package m4lsm_test

import (
	"fmt"
	"log"
	"os"

	"m4lsm"
)

// Example shows the complete write-then-visualize flow: out-of-order
// writes, a range delete, and an M4 representation query.
func Example() {
	dir, err := os.MkdirTemp("", "m4lsm-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := m4lsm.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Write("root.demo",
		m4lsm.Point{Time: 30, Value: 7}, // out of order
		m4lsm.Point{Time: 10, Value: 2},
		m4lsm.Point{Time: 20, Value: 5},
		m4lsm.Point{Time: 40, Value: 1},
	)
	db.Delete("root.demo", 40, 40)

	aggs, _, err := db.M4("root.demo", 0, 50, 1)
	if err != nil {
		log.Fatal(err)
	}
	a := aggs[0]
	fmt.Printf("first=(%d,%g) last=(%d,%g) bottom=%g top=%g\n",
		a.First.Time, a.First.Value, a.Last.Time, a.Last.Value,
		a.Bottom.Value, a.Top.Value)
	// Output:
	// first=(10,2) last=(30,7) bottom=2 top=7
}

// ExampleDB_Query runs the SQL-ish form of the paper's Appendix A.1.
func ExampleDB_Query() {
	dir, err := os.MkdirTemp("", "m4lsm-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := m4lsm.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	for i := int64(0); i < 8; i++ {
		db.Write("s", m4lsm.Point{Time: i * 10, Value: float64(i % 3)})
	}
	res, err := db.Query(`SELECT FirstValue(s), TopValue(s) FROM s
		WHERE time >= 0 AND time < 80 GROUP BY SPANS(2) USING LSM`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("span %.0f: first=%g top=%g\n", row[0], row[1], row[2])
	}
	// Output:
	// span 0: first=0 top=2
	// span 1: first=1 top=2
}

// ExampleDB_M4With compares the merge-free operator with the baseline.
func ExampleDB_M4With() {
	dir, err := os.MkdirTemp("", "m4lsm-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := m4lsm.Open(dir, m4lsm.WithFlushThreshold(4))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	for i := int64(0); i < 16; i++ {
		db.Write("s", m4lsm.Point{Time: i, Value: float64(i)})
	}
	db.Flush()

	lsmAggs, lsmStats, _ := db.M4With("s", 0, 16, 2, m4lsm.OperatorLSM)
	udfAggs, udfStats, _ := db.M4With("s", 0, 16, 2, m4lsm.OperatorUDF)
	fmt.Println("equal results:", lsmAggs[0] == udfAggs[0] && lsmAggs[1] == udfAggs[1])
	fmt.Println("LSM chunk loads:", lsmStats.ChunksLoaded, "UDF chunk loads:", udfStats.ChunksLoaded)
	// Output:
	// equal results: true
	// LSM chunk loads: 0 UDF chunk loads: 4
}
