package exper

import (
	"strings"
	"testing"
)

func TestRunSelfObs(t *testing.T) {
	ms, err := RunSelfObs(Config{Scale: 0.0001, ChunkSize: 100, Reps: 1, Seed: 7, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(selfObsBaseSizes) {
		t.Fatalf("got %d measurements", len(ms))
	}
	for _, m := range ms {
		if m.OffLatency <= 0 || m.OnLatency <= 0 {
			t.Errorf("n=%d: latencies %v/%v", m.Points, m.OffLatency, m.OnLatency)
		}
		// RunSelfObs already fails on cardinality growth or an unanswerable
		// sys series; re-assert the reported invariants here.
		if m.SysSeries == 0 || m.SysSeriesFinal != m.SysSeries {
			t.Errorf("n=%d: sys series %d -> %d", m.Points, m.SysSeries, m.SysSeriesFinal)
		}
		if m.SamplerTicks <= 0 || m.SamplerPoints <= 0 {
			t.Errorf("n=%d: sampler never ticked during the on phase (ticks=%d points=%d)",
				m.Points, m.SamplerTicks, m.SamplerPoints)
		}
		if m.SysQueryRows == 0 {
			t.Errorf("n=%d: no M4 rows from the sys series", m.Points)
		}
	}
	var buf strings.Builder
	WriteSelfObs(&buf, SelfObsTitle(), ms)
	if !strings.Contains(buf.String(), "samplerOn") {
		t.Errorf("report missing column header:\n%s", buf.String())
	}
}
