// Package lsm implements the write path of the storage engine: a WAL-backed
// memtable that flushes read-only chunks into chunk files, a global version
// counter ordering chunks and deletes (§2.2.1), and append-only range
// deletes recorded in a mods sidecar (Definition 2.5).
//
// Mirroring the paper's experimental configuration (Table 4), there is no
// compaction: chunks are immutable once flushed and out-of-order writes
// produce chunks with overlapping time intervals, exactly the state the
// M4-LSM operator is designed for. Queries obtain an immutable Snapshot of
// chunk metadata plus deletes; the unflushed memtable is exposed to the
// snapshot as an in-memory chunk with a version higher than any flushed
// chunk.
//
// The engine is sharded: series are routed to NumShards independent lock
// stripes by hash(seriesID) (see shard.go), so writers to different series
// never contend on one global mutex. The WAL is a sequence of segment files
// shared by all shards (walseg.go); records carry a shard tag, and recovery
// routes each record back to the owning shard by re-hashing the series id.
// Flush and Compact run per-shard, concurrently up to the GOMAXPROCS budget.
package lsm

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"m4lsm/internal/cache"
	"m4lsm/internal/encoding"
	"m4lsm/internal/govern"
	"m4lsm/internal/obs"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
	"m4lsm/internal/tsfile"
)

// Options configures an Engine.
type Options struct {
	// Dir is the database directory; it is created if missing.
	Dir string
	// NumShards splits the engine into independent lock stripes: series
	// are routed by hash(seriesID) % NumShards and each shard owns its
	// memtables, chunk registry, flush accounting and lock. The WAL stays
	// one file with shard-tagged records, and a directory written under
	// one shard count reopens correctly under any other (routing is a
	// pure function of the series id). 0 or 1 (the default) keeps the
	// engine single-striped.
	NumShards int
	// FlushThreshold is the number of buffered points per series that
	// triggers an automatic flush, and the maximum chunk size; it is the
	// analogue of IoTDB's avg_series_point_number_threshold (Table 4
	// sets it to 1000). Default 1000.
	FlushThreshold int
	// Codec selects the chunk encoding. Default CodecGorilla.
	Codec encoding.Codec
	// SyncWAL fsyncs the WAL on every write batch. Slower, durable.
	SyncWAL bool
	// DisableWAL skips write-ahead logging (used by bulk loaders that
	// flush explicitly and can regenerate data).
	DisableWAL bool
	// ChunkCacheBytes bounds an LRU over decoded chunk columns shared by
	// all queries. 0 (the default) disables caching — the paper's
	// experiments run cold.
	ChunkCacheBytes int64
	// StepHook, when set, is called at every write-path step (WAL append,
	// mods append, each flush stage). A non-nil return aborts the step
	// with that error, leaving partial on-disk state behind — the
	// faultfs.StepInjector uses this to simulate a crash at any point.
	// Installing a StepHook also forces per-shard maintenance to run
	// sequentially, so injection schedules stay deterministic.
	StepHook func(site string) error
	// WrapFile, when set, wraps the io.ReaderAt of every chunk file the
	// engine opens, letting faultfs inject byte-level read faults under
	// the CRC checks. path names the file being opened.
	WrapFile func(path string, ra io.ReaderAt) io.ReaderAt
	// WrapSource, when set, wraps the chunk source of every chunk file,
	// injecting chunk-level read faults at query time only — file opens
	// and footer parses stay clean. Applied beneath the chunk cache.
	WrapSource func(src storage.ChunkSource) storage.ChunkSource
	// ReadRetries bounds how many times a transient chunk-read fault is
	// retried (with deterministic jittered backoff) before it surfaces to
	// the query. 0 means the default of 2 retries (3 attempts total);
	// DisableReadRetry turns retrying off entirely. Detected corruption
	// is never retried. RetryBaseDelay/RetryMaxDelay shape the backoff
	// (defaults 1ms/50ms).
	ReadRetries      int
	DisableReadRetry bool
	RetryBaseDelay   time.Duration
	RetryMaxDelay    time.Duration
	// SpaceProbeInterval rate-limits the disk-space probe that recovers
	// the engine from read-only degraded mode after ENOSPC. 0 means the
	// default of one probe per second; negative probes on every write
	// attempt (tests).
	SpaceProbeInterval time.Duration
	// Metrics, when set, receives the engine's runtime metrics: write/
	// flush/compaction counters and latency histograms, WAL size, memtable
	// and chunk gauges, quarantine state, and chunk-cache effectiveness.
	// The same registry is shared with the query operators and the HTTP
	// layer; nil (the default) disables all metric recording at zero cost.
	Metrics *obs.Registry
	// DisablePyramid turns off the M4 rollup pyramid: no cells are built
	// or persisted and snapshots carry no PyramidSource, so every query
	// takes the span×G path. The default (false) maintains the pyramid at
	// flush/compact time. See pyramid.go.
	DisablePyramid bool
	// WALSegmentBytes is the size at which the active WAL segment is
	// sealed and a fresh one started (see walseg.go); sealed segments
	// retire individually as their shards flush. 0 means 1 MiB.
	WALSegmentBytes int64
	// ScrubInterval, when positive, runs the background integrity
	// scrubber that often: every chunk's CRCs, the pyramid manifest and
	// the sealed WAL segments are re-verified from disk, and corrupt
	// chunks are quarantined before any query can trip over them. 0
	// disables the background pass (Scrub can still be called directly).
	ScrubInterval time.Duration
	// ScrubLimits caps one scrub pass's I/O through a govern budget so
	// scrubbing never starves queries; an exhausted budget yields a
	// partial pass that resumes where it left off on the next run. The
	// zero value scans everything.
	ScrubLimits govern.Limits
	// WALGroupSize bounds how many records one WAL group commit carries
	// (leader/follower batching; see groupcommit.go). Concurrent writers
	// share one fsync per group when SyncWAL is on. 0 means 128.
	WALGroupSize int
	// IngestQueuePoints / IngestQueueBytes cap each shard's batched-ingest
	// queue (see ingest.go): a WriteBatch enqueue that would overflow
	// either cap blocks up to IngestEnqueueWait and then fails with the
	// retryable ErrIngestBackpressure. Defaults: 65536 points, 8 MiB.
	IngestQueuePoints int
	IngestQueueBytes  int
	// IngestEnqueueWait bounds how long a WriteBatch blocks on a full
	// shard queue before backpressure surfaces. 0 means 2s; negative
	// fails immediately.
	IngestEnqueueWait time.Duration
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.NumShards <= 0 {
		out.NumShards = 1
	}
	if out.FlushThreshold <= 0 {
		out.FlushThreshold = 1000
	}
	if !out.Codec.Valid() {
		out.Codec = encoding.CodecGorilla
	}
	return out
}

// WAL opcodes. Legacy untagged records (ops 1 and 2) predate sharding and
// are still replayed; the engine always writes the shard-tagged forms.
const (
	walOpInsert        byte = 1
	walOpDelete        byte = 2
	walOpInsertSharded byte = 3
	walOpDeleteSharded byte = 4
	walOpCheckpoint    byte = 5
)

// Engine is the LSM storage engine. All methods are safe for concurrent
// use.
//
// Lock order: a series operation takes its shard's mutex first and may then
// take walMu (WAL append/reset) or fileMu (file-list update); walMu and
// fileMu are never nested inside each other, quarMu nests inside anything.
// More than one shard lock is held only by Close, Kill and Compact, which
// acquire all shards in index order.
type Engine struct {
	opts Options

	shards []*shard

	// nextVer is the global version counter ordering chunks and deletes
	// across all shards (§2.2.1). Load() is always ≥ every version handed
	// out so far, which is what memtable pseudo-chunks rely on.
	nextVer atomic.Uint64

	// fileSeq numbers chunk files; allocation is atomic so concurrent
	// per-shard flushes pick distinct names.
	fileSeq atomic.Int64

	// fileMu guards the open-file bookkeeping shared by all shards.
	fileMu     sync.Mutex
	files      []*tsfile.Reader
	retired    []*tsfile.Reader // unlinked by compaction, kept open for live snapshots
	unseqFiles int
	// badFiles counts chunk files set aside (renamed *.bad) because their
	// footer did not validate — crash leftovers recovered via the WAL.
	badFiles int

	// walMu serializes every mutation of the segmented WAL shared by all
	// shards: appends, rotation, checkpointing and segment retirement.
	// walCommit is the group-commit hand-off in front of it: writers
	// enqueue records there and a single leader per group takes walMu
	// (see groupcommit.go).
	walMu     sync.Mutex
	wal       *walog
	walCommit walCommitter

	// ing owns the bounded batched-ingest queues and their append
	// workers (see ingest.go); workers take shard locks, so Close/Kill
	// stop the ingester before lockAll.
	ing *ingester

	// mods is the shared delete sidecar; the ModLog is internally locked,
	// and the pointer itself is atomic because Compact swaps in a fresh
	// sidecar while Info may be reading concurrently.
	mods atomic.Pointer[tsfile.ModLog]

	cache  *cache.LRU // nil when caching is disabled
	closed atomic.Bool

	// Chunk-level read quarantine: chunks whose data failed a CRC or
	// decode check during a query. Quarantined chunks are excluded from
	// later snapshots (their reads can never succeed — the file bytes are
	// wrong) and surface in Info and /healthz. Guarded by quarMu, not a
	// shard lock: quarantine reports arrive from query worker goroutines
	// while other queries hold shard read locks.
	quarMu      sync.Mutex
	quarantined map[chunkID]error

	// Read-only degraded mode (disk full): readOnly is the hot-path flag,
	// roMu guards the reason string, lastProbe rate-limits recovery
	// probes, roTrips counts entries into the mode. Transient-read retry
	// accounting (readRetries/retryExhausted) lives here too: the retry
	// wrapper outlives individual snapshots.
	readOnly       atomic.Bool
	roMu           sync.Mutex
	roReason       string
	roTrips        atomic.Int64
	lastProbe      atomic.Int64
	readRetries    atomic.Int64
	retryExhausted atomic.Int64

	// pyr is the M4 rollup pyramid, nil when Options.DisablePyramid is
	// set. Its internal mutex nests inside shard locks and is never held
	// across I/O; see pyramid.go.
	pyr *pyramid

	// Background scrubber lifecycle (see scrub.go): the ticker goroutine
	// is stopped before Close/Kill take the shard locks, because a scrub
	// pass takes them itself.
	scrubStop chan struct{}
	scrubWG   sync.WaitGroup
	scrubOnce sync.Once
	scrubMu   sync.Mutex // serializes whole scrub passes and the resume cursor
	scrubCur  int        // resume cursor: chunks already verified this cycle

	// Scrub and backup counters (see scrub.go / backup.go).
	scrubRuns        atomic.Int64
	scrubChunks      atomic.Int64
	scrubQuarantines atomic.Int64
	scrubErrors      atomic.Int64
	backupRuns       atomic.Int64
	backupErrors     atomic.Int64
	backupBytes      atomic.Int64
	lastBackupUnix   atomic.Int64

	// met holds pre-resolved write-path instruments; every field is
	// nil-safe, so instrumented code records unconditionally and a nil
	// Options.Metrics costs one pointer check per site.
	met engineMetrics
}

// engineMetrics are the engine's registry instruments (all nil when
// Options.Metrics is nil).
type engineMetrics struct {
	pointsWritten *obs.Counter
	deletes       *obs.Counter
	walAppends    *obs.Counter
	flushes       *obs.Counter
	flushSeconds  *obs.Histogram
	flushedPoints *obs.Counter
	compactions   *obs.Counter
	compactSecs   *obs.Histogram
	quarantines   *obs.Counter
}

// chunkID identifies one immutable chunk across snapshots.
type chunkID struct {
	seriesID string
	version  storage.Version
}

type chunkEntry struct {
	meta storage.ChunkMeta
	src  storage.ChunkSource
}

// allocVersion hands out the next version number.
func (e *Engine) allocVersion() storage.Version {
	return storage.Version(e.nextVer.Add(1) - 1)
}

// bumpVersion raises the counter so future allocations exceed v. Only
// called from single-threaded recovery.
func (e *Engine) bumpVersion(v storage.Version) {
	if uint64(v) >= e.nextVer.Load() {
		e.nextVer.Store(uint64(v) + 1)
	}
}

// modsLog returns the current delete sidecar.
func (e *Engine) modsLog() *tsfile.ModLog { return e.mods.Load() }

// Open opens (or creates) the database in opts.Dir, recovering state from
// chunk files, the mods sidecar and the WAL.
func Open(opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("lsm: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	e := &Engine{
		opts:        opts,
		quarantined: make(map[chunkID]error),
	}
	e.nextVer.Store(1)
	e.ing = newIngester(opts.NumShards)
	e.shards = make([]*shard, opts.NumShards)
	for i := range e.shards {
		e.shards[i] = newShard()
		e.shards[i].ix = i
	}
	if opts.ChunkCacheBytes > 0 {
		e.cache = cache.NewLRU(opts.ChunkCacheBytes)
	}
	if !opts.DisablePyramid {
		e.pyr = newPyramid()
	}
	if err := e.loadFiles(); err != nil {
		return nil, err
	}
	mods, err := tsfile.OpenModLog(filepath.Join(opts.Dir, "deletes.mods"))
	if err != nil {
		return nil, fmt.Errorf("lsm: %w", err)
	}
	e.mods.Store(mods)
	for _, d := range mods.All() {
		e.bumpVersion(d.Version)
	}
	// The pyramid manifest loads after chunks and mods (its watermark
	// validation walks both) and before WAL replay (which marks its own
	// replayed ranges stale).
	e.pyrLoad()
	if !opts.DisableWAL {
		wal, entries, err := openWALog(opts.Dir, len(e.shards), opts.WALSegmentBytes)
		if err != nil {
			mods.Close()
			return nil, fmt.Errorf("lsm: %w", err)
		}
		e.wal = wal
		for i, ent := range entries {
			if err := e.replayWAL(ent.seq, ent.payload); err != nil {
				e.closeFiles()
				mods.Close()
				wal.active.Close()
				return nil, fmt.Errorf("lsm: wal segment %d record %d: %w", ent.seq, i, err)
			}
		}
	}
	e.registerMetrics(opts.Metrics)
	e.startScrubber()
	return e, nil
}

// registerMetrics resolves the engine's write-path instruments and
// registers the state gauges. Every accessor is nil-safe, so this is a
// no-op wiring when reg is nil.
func (e *Engine) registerMetrics(reg *obs.Registry) {
	e.met = engineMetrics{
		pointsWritten: reg.Counter("lsm_points_written_total"),
		deletes:       reg.Counter("lsm_deletes_total"),
		walAppends:    reg.Counter("lsm_wal_appends_total"),
		flushes:       reg.Counter("lsm_flushes_total"),
		flushSeconds:  reg.Histogram("lsm_flush_seconds"),
		flushedPoints: reg.Counter("lsm_flushed_points_total"),
		compactions:   reg.Counter("lsm_compactions_total"),
		compactSecs:   reg.Histogram("lsm_compact_seconds"),
		quarantines:   reg.Counter("lsm_quarantines_total"),
	}
	if reg == nil {
		return
	}
	info := func(f func(Info) float64) func() float64 {
		return func() float64 { return f(e.Info()) }
	}
	reg.GaugeFunc("lsm_memtable_points", info(func(i Info) float64 { return float64(i.MemtablePoints) }))
	reg.GaugeFunc("lsm_chunks", info(func(i Info) float64 { return float64(i.Chunks) }))
	reg.GaugeFunc("lsm_files", info(func(i Info) float64 { return float64(i.Files) }))
	reg.GaugeFunc("lsm_unseq_files", info(func(i Info) float64 { return float64(i.UnseqFiles) }))
	reg.GaugeFunc("lsm_bad_files", info(func(i Info) float64 { return float64(i.BadFiles) }))
	reg.GaugeFunc("lsm_quarantined_chunks", info(func(i Info) float64 { return float64(i.QuarantinedChunks) }))
	reg.GaugeFunc("lsm_delete_tombstones", info(func(i Info) float64 { return float64(i.Deletes) }))
	reg.GaugeFunc("lsm_read_only", func() float64 {
		if e.readOnly.Load() {
			return 1
		}
		return 0
	})
	reg.CounterFunc("lsm_read_only_trips_total", func() float64 { return float64(e.roTrips.Load()) })
	reg.CounterFunc("lsm_read_retries_total", func() float64 { return float64(e.readRetries.Load()) })
	reg.CounterFunc("lsm_read_retry_exhausted_total", func() float64 { return float64(e.retryExhausted.Load()) })
	walStat := func(f func(*walog) float64) func() float64 {
		return func() float64 {
			if e.wal == nil || e.closed.Load() {
				return 0
			}
			e.walMu.Lock()
			defer e.walMu.Unlock()
			if e.closed.Load() {
				return 0
			}
			return f(e.wal)
		}
	}
	reg.GaugeFunc("lsm_wal_bytes", walStat(func(w *walog) float64 { return float64(w.totalBytes()) }))
	reg.GaugeFunc("lsm_wal_segments", walStat(func(w *walog) float64 { return float64(len(w.sealed) + 1) }))
	reg.CounterFunc("lsm_wal_retired_total", walStat(func(w *walog) float64 { return float64(w.retiredSegs) }))
	reg.CounterFunc("lsm_wal_retired_bytes_total", walStat(func(w *walog) float64 { return float64(w.retiredBytes) }))
	reg.CounterFunc("lsm_wal_rotations_total", walStat(func(w *walog) float64 { return float64(w.rotations) }))
	reg.CounterFunc("lsm_wal_torn_truncations_total", walStat(func(w *walog) float64 { return float64(w.tornTruncated) }))
	reg.GaugeFunc("lsm_wal_quarantined_segments", walStat(func(w *walog) float64 { return float64(w.quarantinedSeg) }))
	reg.CounterFunc("lsm_wal_group_commits_total", func() float64 { return float64(e.walCommit.groups.Load()) })
	reg.CounterFunc("lsm_wal_group_records_total", func() float64 { return float64(e.walCommit.records.Load()) })
	reg.GaugeFunc("lsm_ingest_queue_points", func() float64 { return float64(e.ing.queuedPoints()) })
	reg.GaugeFunc("lsm_ingest_queue_bytes", func() float64 { return float64(e.ing.queuedBytes()) })
	reg.CounterFunc("lsm_ingest_batches_total", func() float64 { return float64(e.ing.batches.Load()) })
	reg.CounterFunc("lsm_ingest_entries_total", func() float64 { return float64(e.ing.entries.Load()) })
	reg.CounterFunc("lsm_ingest_points_total", func() float64 { return float64(e.ing.pointsIn.Load()) })
	reg.CounterFunc("lsm_ingest_backpressure_total", func() float64 { return float64(e.ing.backpressure.Load()) })
	reg.CounterFunc("scrub_runs_total", func() float64 { return float64(e.scrubRuns.Load()) })
	reg.CounterFunc("scrub_chunks_checked_total", func() float64 { return float64(e.scrubChunks.Load()) })
	reg.CounterFunc("scrub_quarantines_total", func() float64 { return float64(e.scrubQuarantines.Load()) })
	reg.CounterFunc("scrub_errors_total", func() float64 { return float64(e.scrubErrors.Load()) })
	reg.CounterFunc("backup_runs_total", func() float64 { return float64(e.backupRuns.Load()) })
	reg.CounterFunc("backup_errors_total", func() float64 { return float64(e.backupErrors.Load()) })
	reg.CounterFunc("backup_bytes_total", func() float64 { return float64(e.backupBytes.Load()) })
	if e.pyr != nil {
		reg.GaugeFunc("lsm_pyramid_series", func() float64 { return float64(e.pyrInfo().series) })
		reg.GaugeFunc("lsm_pyramid_cells", func() float64 { return float64(e.pyrInfo().cells) })
		reg.GaugeFunc("lsm_pyramid_stale_ranges", func() float64 { return float64(e.pyrInfo().staleRanges) })
		reg.CounterFunc("lsm_pyramid_rebuilds_total", func() float64 { return float64(e.pyr.rebuilds.Load()) })
		reg.CounterFunc("lsm_pyramid_rebuild_errors_total", func() float64 { return float64(e.pyr.rebuildErrors.Load()) })
		reg.CounterFunc("lsm_pyramid_invalidations_total", func() float64 { return float64(e.pyr.invalidations.Load()) })
		reg.CounterFunc("lsm_pyramid_saves_total", func() float64 { return float64(e.pyr.saves.Load()) })
	}
	cs := func(f func(cache.Stats) float64) func() float64 {
		return func() float64 { return f(e.CacheStats()) }
	}
	reg.CounterFunc("chunk_cache_hits_total", cs(func(s cache.Stats) float64 { return float64(s.Hits) }))
	reg.CounterFunc("chunk_cache_misses_total", cs(func(s cache.Stats) float64 { return float64(s.Misses) }))
	reg.CounterFunc("chunk_cache_evictions_total", cs(func(s cache.Stats) float64 { return float64(s.Evictions) }))
	reg.GaugeFunc("chunk_cache_used_bytes", cs(func(s cache.Stats) float64 { return float64(s.UsedBytes) }))
	reg.GaugeFunc("chunk_cache_entries", cs(func(s cache.Stats) float64 { return float64(s.Entries) }))
}

// Metrics returns the registry the engine was opened with (nil when
// observability is off). The query layers share it.
func (e *Engine) Metrics() *obs.Registry { return e.opts.Metrics }

// NumShards reports the engine's shard count.
func (e *Engine) NumShards() int { return len(e.shards) }

// step invokes the write-path fault hook, if any.
func (e *Engine) step(site string) error {
	if e.opts.StepHook == nil {
		return nil
	}
	return e.opts.StepHook(site)
}

// openTSFile opens a chunk file, routing reads through Options.WrapFile
// when fault injection is configured.
func (e *Engine) openTSFile(path string) (*tsfile.Reader, error) {
	if e.opts.WrapFile == nil {
		return tsfile.Open(path)
	}
	return tsfile.OpenWith(path, func(ra io.ReaderAt) io.ReaderAt {
		return e.opts.WrapFile(path, ra)
	})
}

// uniqueBadPath picks an unused quarantine name for path: path.bad, or
// path.bad.1, path.bad.2, ... when earlier crashes already left one. A
// previously quarantined file must never be overwritten — it may be the
// only copy of data an operator wants to salvage by hand.
func uniqueBadPath(path string) (string, error) {
	for i := 0; ; i++ {
		cand := path + ".bad"
		if i > 0 {
			cand = fmt.Sprintf("%s.bad.%d", path, i)
		}
		if _, err := os.Lstat(cand); errors.Is(err, os.ErrNotExist) {
			return cand, nil
		} else if err != nil {
			return "", err
		}
	}
}

// loadFiles opens every readable chunk file in the directory, routing each
// chunk to its series' shard. Files without a valid footer (crash during
// flush) are renamed aside; their contents are still in the WAL. Runs
// single-threaded during Open, so no locks are taken.
func (e *Engine) loadFiles() error {
	entries, err := os.ReadDir(e.opts.Dir)
	if err != nil {
		return fmt.Errorf("lsm: %w", err)
	}
	var names []string
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		if strings.Contains(ent.Name(), ".tsf.bad") {
			e.badFiles++ // quarantined by an earlier recovery
			continue
		}
		if strings.HasSuffix(ent.Name(), ".tsf") {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(e.opts.Dir, name)
		r, err := e.openTSFile(path)
		if errors.Is(err, tsfile.ErrCorrupt) {
			// Incomplete flush; set aside and rely on the WAL.
			bad, berr := uniqueBadPath(path)
			if berr != nil {
				return fmt.Errorf("lsm: quarantine %s: %w", name, berr)
			}
			if rerr := os.Rename(path, bad); rerr != nil {
				return fmt.Errorf("lsm: quarantine %s: %w", name, rerr)
			}
			e.badFiles++
			continue
		}
		if err != nil {
			e.closeFiles()
			return fmt.Errorf("lsm: %w", err)
		}
		e.files = append(e.files, r)
		if seq, ok := parseFileSeq(name); ok && int64(seq) >= e.fileSeq.Load() {
			e.fileSeq.Store(int64(seq) + 1)
		}
		unseq := strings.HasSuffix(name, ".unseq.tsf")
		if unseq {
			e.unseqFiles++
		}
		for _, m := range r.Metas() {
			sh, _ := e.shardFor(m.SeriesID)
			sh.chunks[m.SeriesID] = append(sh.chunks[m.SeriesID], chunkEntry{meta: m, src: e.sourceFor(r)})
			e.bumpVersion(m.Version)
			if !unseq {
				if cur, ok := sh.maxSeqTime[m.SeriesID]; !ok || m.Last.T > cur {
					sh.maxSeqTime[m.SeriesID] = m.Last.T
				}
			}
		}
	}
	return nil
}

func parseFileSeq(name string) (int, bool) {
	base := strings.TrimSuffix(name, ".tsf")
	base = strings.TrimSuffix(base, ".seq")
	base = strings.TrimSuffix(base, ".unseq")
	if base == "" {
		return 0, false
	}
	seq := 0
	for _, c := range base {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + int(c-'0')
	}
	return seq, true
}

// closeFiles releases every open chunk-file handle. Callers hold all shard
// locks (or run single-threaded during Open).
func (e *Engine) closeFiles() {
	e.fileMu.Lock()
	defer e.fileMu.Unlock()
	for _, f := range e.files {
		f.Close()
	}
	e.files = nil
	for _, f := range e.retired {
		f.Close()
	}
	e.retired = nil
}

// Write buffers points for seriesID. Points may arrive in any order and may
// overwrite earlier timestamps; the latest write for a timestamp wins. A
// flush is triggered automatically when the buffer reaches FlushThreshold.
func (e *Engine) Write(seriesID string, pts ...series.Point) error {
	if len(pts) == 0 {
		return nil
	}
	if seriesID == "" {
		return errors.New("lsm: empty series id")
	}
	for _, p := range pts {
		if math.IsNaN(p.V) {
			return fmt.Errorf("lsm: NaN value at t=%d", p.T)
		}
	}
	if err := e.writable(); err != nil {
		return err
	}
	sh, shardIx := e.shardFor(seriesID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e.closed.Load() {
		return errors.New("lsm: engine closed")
	}
	sh.memPts.Add(int64(len(pts)))
	if e.wal != nil {
		if err := e.step("wal.append"); err != nil {
			sh.memPts.Add(-int64(len(pts)))
			return err
		}
		// The append claims this shard's pendingMin watermark under walMu,
		// so the record's segment cannot retire before this shard's next
		// flush checkpoint — and that checkpoint cannot race in between the
		// append and the memtable update because we hold the shard lock.
		if _, err := e.walAppend(encodeInsertSharded(shardIx, seriesID, pts), shardIx, false); err != nil {
			sh.memPts.Add(-int64(len(pts)))
			return e.classifyWrite(err)
		}
		e.met.walAppends.Inc()
		if err := e.step("wal.appended"); err != nil {
			sh.memPts.Add(-int64(len(pts)))
			return err
		}
	}
	e.pyrMarkStalePoints(seriesID, pts)
	sh.mem[seriesID] = append(sh.mem[seriesID], pts...)
	e.met.pointsWritten.Add(int64(len(pts)))
	if len(sh.mem[seriesID]) >= e.opts.FlushThreshold {
		n, err := e.flushShardLocked(sh)
		if err != nil {
			// The points themselves are durable (memtable + WAL); only
			// the flush failed. Classify so disk-full surfaces as the
			// retryable degraded-mode error.
			return e.classifyWrite(err)
		}
		if n > 0 {
			// Classified like the flush above: ENOSPC while retiring WAL
			// segments or persisting the pyramid manifest must flip the
			// engine read-only, not surface as an anonymous I/O error.
			if err := e.maybeRetireWAL(); err != nil {
				return e.classifyWrite(err)
			}
			return e.classifyWrite(e.pyrMaybeSave())
		}
	}
	return nil
}

// Delete records an append-only range tombstone covering the closed range
// [start, end] of seriesID (Definition 2.5). It applies to every chunk with
// a smaller version and to the current memtable contents.
func (e *Engine) Delete(seriesID string, start, end int64) error {
	if end < start {
		return fmt.Errorf("lsm: inverted delete range [%d,%d]", start, end)
	}
	if err := e.writable(); err != nil {
		return err
	}
	sh, shardIx := e.shardFor(seriesID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e.closed.Load() {
		return errors.New("lsm: engine closed")
	}
	d := storage.Delete{SeriesID: seriesID, Version: e.allocVersion(), Start: start, End: end}
	// Mark the range stale before anything becomes visible; over-marking
	// on a failed append only costs rebuild work.
	e.pyrMarkStaleClosed(seriesID, start, end)
	// The WAL is written first and is authoritative: a crash between the two
	// appends leaves the delete in the WAL only, and recovery re-appends it
	// to the mods sidecar (see replayWAL). The reverse order would leave a
	// half-applied delete — recorded against flushed chunks but not against
	// WAL-replayed memtable points.
	var walSeq uint64
	if e.wal != nil {
		if err := e.step("wal.append"); err != nil {
			return err
		}
		// pin=true: the record's segment must survive until the delete is
		// durable in the mods sidecar below — it does not count toward the
		// shard's pendingMin (deletes carry no memtable points to flush).
		seq, err := e.walAppend(encodeDeleteSharded(shardIx, d), shardIx, true)
		if err != nil {
			return e.classifyWrite(err)
		}
		walSeq = seq
		e.met.walAppends.Inc()
	}
	if err := e.step("mods.append"); err != nil {
		return err
	}
	if err := e.modsLog().Append(d); err != nil {
		return e.classifyWrite(err)
	}
	if e.wal != nil {
		e.walUnpin(walSeq)
	}
	e.met.deletes.Inc()
	sh.applyDeleteToMem(d)
	return nil
}

// Flush persists every shard's memtable as chunk files and clears the WAL.
// Shards flush concurrently (sequentially under a StepHook).
func (e *Engine) Flush() error {
	if err := e.writable(); err != nil {
		return err
	}
	var flushed atomic.Int64
	err := runShardPool(e.shardParallelism(), len(e.shards), func(i int) error {
		sh := e.shards[i]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if e.closed.Load() {
			return errors.New("lsm: engine closed")
		}
		n, err := e.flushShardLocked(sh)
		flushed.Add(int64(n))
		return err
	})
	if err != nil {
		return e.classifyWrite(err)
	}
	if flushed.Load() > 0 {
		if err := e.maybeRetireWAL(); err != nil {
			return e.classifyWrite(err)
		}
		return e.classifyWrite(e.pyrMaybeSave())
	}
	return nil
}

// flushShardLocked persists one shard's memtable, separating in-order data
// from out-of-order arrivals the way IoTDB's sequence/unsequence spaces do
// (reference [26] of the paper): per series, points later than everything
// already flushed go to the sequence file (whose chunks never overlap
// previously flushed ones), the rest to an unsequence file. Returns the
// number of points flushed. Caller holds sh.mu.
func (e *Engine) flushShardLocked(sh *shard) (int, error) {
	flushPts := int(sh.memPts.Load())
	if flushPts == 0 {
		return 0, nil
	}
	flushStart := time.Now()
	ids := make([]string, 0, len(sh.mem))
	for id, buf := range sh.mem {
		if len(buf) > 0 {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	seq := map[string]series.Series{}
	unseq := map[string]series.Series{}
	for _, id := range ids {
		data := series.SortDedup(sh.mem[id])
		split := 0
		if maxT, ok := sh.maxSeqTime[id]; ok {
			split = sort.Search(len(data), func(i int) bool { return data[i].T > maxT })
		}
		if split > 0 {
			unseq[id] = data[:split]
		}
		if split < len(data) {
			seq[id] = data[split:]
			sh.maxSeqTime[id] = data[len(data)-1].T
		}
	}
	if err := e.writeSpaceFile(sh, ids, unseq, "unseq"); err != nil {
		return 0, err
	}
	if err := e.writeSpaceFile(sh, ids, seq, "seq"); err != nil {
		return 0, err
	}
	sh.mem = make(map[string]series.Series)
	sh.memPts.Store(0)
	// The memtable is empty and the flushed chunks registered: sh.chunks
	// plus the mods sidecar are the full merged state, so rebuild this
	// shard's stale pyramid cells now. Only the fault hook can fail this.
	if err := e.pyrRebuildShard(sh); err != nil {
		return 0, err
	}
	// Checkpoint while still holding sh.mu: every WAL record of this shard
	// so far is now durable in chunk files, and no new write can race in
	// before the checkpoint lands.
	if err := e.walCheckpoint(sh.ix); err != nil {
		return 0, err
	}
	e.met.flushes.Inc()
	e.met.flushedPoints.Add(int64(flushPts))
	e.met.flushSeconds.Observe(time.Since(flushStart).Seconds())
	return flushPts, nil
}

// writeSpaceFile flushes one space's per-series data as a chunk file and
// registers its chunks with the shard. Chunks are split at FlushThreshold
// points so big batches still yield paper-sized chunks. Caller holds sh.mu.
func (e *Engine) writeSpaceFile(sh *shard, ids []string, bySeries map[string]series.Series, space string) error {
	if len(bySeries) == 0 {
		return nil
	}
	name := fmt.Sprintf("%06d.%s.tsf", e.fileSeq.Add(1)-1, space)
	path := filepath.Join(e.opts.Dir, name)
	if err := e.step("flush.create:" + name); err != nil {
		return err
	}
	w, err := tsfile.Create(path)
	if err != nil {
		return err
	}
	for _, id := range ids {
		data := bySeries[id]
		for len(data) > 0 {
			n := len(data)
			if n > e.opts.FlushThreshold {
				n = e.opts.FlushThreshold
			}
			// A step-hook "crash" mid-file must leave the partial bytes on
			// disk (Crash), unlike a write error, which cleans up (Abort):
			// recovery quarantines the footer-less leftover and replays
			// the WAL.
			if err := e.step("flush.chunk:" + name); err != nil {
				w.Crash()
				return err
			}
			if _, err := w.WriteChunk(id, e.allocVersion(), e.opts.Codec, data[:n]); err != nil {
				w.Abort()
				return err
			}
			data = data[n:]
		}
	}
	if err := e.step("flush.footer:" + name); err != nil {
		w.Crash()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	if err := e.step("flush.reopen:" + name); err != nil {
		return err
	}
	r, err := e.openTSFile(path)
	if err != nil {
		return fmt.Errorf("lsm: reopen flushed file: %w", err)
	}
	e.fileMu.Lock()
	e.files = append(e.files, r)
	if space == "unseq" {
		e.unseqFiles++
	}
	e.fileMu.Unlock()
	for _, m := range r.Metas() {
		sh.chunks[m.SeriesID] = append(sh.chunks[m.SeriesID], chunkEntry{meta: m, src: e.sourceFor(r)})
	}
	return nil
}

// Snapshot returns an immutable view of seriesID for the half-open query
// range r: every chunk whose closed interval overlaps r plus every delete
// intersecting it. The unflushed memtable appears as one in-memory chunk
// with a version above all flushed chunks.
func (e *Engine) Snapshot(seriesID string, r series.TimeRange) (*storage.Snapshot, error) {
	sh, _ := e.shardFor(seriesID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if e.closed.Load() {
		return nil, errors.New("lsm: engine closed")
	}
	stats := &storage.Stats{}
	snap := &storage.Snapshot{
		SeriesID: seriesID,
		Stats:    stats,
		Warnings: &storage.Warnings{},
	}
	snap.OnQuarantine = func(meta storage.ChunkMeta, err error) {
		// Only CRC/decode failures are permanent: the bytes on disk are
		// wrong and every retry would fail. Transient read errors (I/O
		// hiccups, injected faults) stay retryable on the next query.
		if !errors.Is(err, tsfile.ErrCorrupt) {
			return
		}
		e.quarantineChunk(meta, err)
	}
	e.quarMu.Lock()
	for _, ce := range sh.chunks[seriesID] {
		if !ce.meta.OverlapsRange(r) {
			continue
		}
		if qerr, ok := e.quarantined[chunkID{ce.meta.SeriesID, ce.meta.Version}]; ok {
			snap.Warnings.Add("chunk %s v%d quarantined, excluded: %v", ce.meta.SeriesID, ce.meta.Version, qerr)
			continue
		}
		snap.Chunks = append(snap.Chunks, storage.NewChunkRef(ce.meta, ce.src, stats))
	}
	e.quarMu.Unlock()
	if buf := sh.mem[seriesID]; len(buf) > 0 {
		data := series.SortDedup(buf.Clone())
		memSrc := storage.NewMemSource()
		meta, err := memSrc.AddChunk(seriesID, storage.Version(e.nextVer.Load()), data)
		if err != nil {
			return nil, fmt.Errorf("lsm: memtable snapshot: %w", err)
		}
		if meta.OverlapsRange(r) {
			snap.Chunks = append(snap.Chunks, storage.NewChunkRef(meta, memSrc, stats))
		}
	}
	for _, d := range e.modsLog().ForSeries(seriesID) {
		if d.Start < r.End && d.End >= r.Start {
			snap.Deletes = append(snap.Deletes, d)
		}
	}
	snap.Pyramid = e.pyrViewFor(seriesID, r)
	return snap, nil
}

// SeriesIDs lists every series with buffered or flushed data, sorted. The
// sorted order is load-bearing: wildcard queries expand through it, so the
// result must be deterministic across runs and shard counts.
func (e *Engine) SeriesIDs() []string {
	set := make(map[string]bool)
	for _, sh := range e.shards {
		sh.mu.RLock()
		for id := range sh.chunks {
			set[id] = true
		}
		for id, buf := range sh.mem {
			if len(buf) > 0 {
				set[id] = true
			}
		}
		sh.mu.RUnlock()
	}
	ids := make([]string, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Info summarizes engine state for tooling.
type Info struct {
	Shards         int
	Files          int
	UnseqFiles     int // files holding out-of-order (unsequence) data
	Chunks         int
	MemtablePoints int
	NextVersion    storage.Version
	Deletes        int

	// BadFiles counts chunk files quarantined on disk (renamed *.bad)
	// because their footer never validated — crash leftovers.
	BadFiles int
	// QuarantinedChunks counts chunks excluded from snapshots after a
	// CRC or decode failure during a query.
	QuarantinedChunks int

	// ReadOnly reports the disk-full degraded mode: writes are rejected
	// with ErrReadOnly (retryable), queries keep serving, and the engine
	// auto-recovers when a space probe succeeds. ReadOnlyReason carries
	// the triggering error.
	ReadOnly       bool
	ReadOnlyReason string
	// ReadRetries / ReadRetryExhausted count transient chunk-read
	// retries and reads that failed even after all attempts.
	ReadRetries        int64
	ReadRetryExhausted int64

	// Rollup-pyramid state: series with cells, total cells across all
	// levels, and stale ranges awaiting rebuild. All zero when the
	// pyramid is disabled.
	PyramidSeries      int
	PyramidCells       int
	PyramidStaleRanges int

	// Segmented-WAL state (zero when the WAL is disabled). WALWarnings
	// carries recovery findings — torn tails truncated, segments
	// quarantined — verbatim for /healthz.
	WALSegments            int
	WALBytes               int64
	WALRetiredSegments     int64
	WALRetiredBytes        int64
	WALTornTruncations     int
	WALQuarantinedSegments int
	WALWarnings            []string

	// Integrity-scrubber and backup lifetime counters (see scrub.go and
	// backup.go).
	ScrubRuns          int64
	ScrubChunksScanned int64
	ScrubQuarantines   int64
	ScrubErrors        int64
	BackupRuns         int64
	LastBackupUnix     int64
}

// Info returns a snapshot of engine statistics.
func (e *Engine) Info() Info {
	var chunks, memPts int
	for _, sh := range e.shards {
		sh.mu.RLock()
		for _, cs := range sh.chunks {
			chunks += len(cs)
		}
		memPts += int(sh.memPts.Load())
		sh.mu.RUnlock()
	}
	e.fileMu.Lock()
	files, unseq, bad := len(e.files), e.unseqFiles, e.badFiles
	e.fileMu.Unlock()
	e.quarMu.Lock()
	quar := len(e.quarantined)
	e.quarMu.Unlock()
	ro, roReason := e.ReadOnly()
	ps := e.pyrInfo()
	info := Info{
		Shards:             len(e.shards),
		Files:              files,
		UnseqFiles:         unseq,
		Chunks:             chunks,
		MemtablePoints:     memPts,
		NextVersion:        storage.Version(e.nextVer.Load()),
		Deletes:            e.modsLog().Len(),
		BadFiles:           bad,
		QuarantinedChunks:  quar,
		ReadOnly:           ro,
		ReadOnlyReason:     roReason,
		ReadRetries:        e.readRetries.Load(),
		ReadRetryExhausted: e.retryExhausted.Load(),
		PyramidSeries:      ps.series,
		PyramidCells:       ps.cells,
		PyramidStaleRanges: ps.staleRanges,
		ScrubRuns:          e.scrubRuns.Load(),
		ScrubChunksScanned: e.scrubChunks.Load(),
		ScrubQuarantines:   e.scrubQuarantines.Load(),
		ScrubErrors:        e.scrubErrors.Load(),
		BackupRuns:         e.backupRuns.Load(),
		LastBackupUnix:     e.lastBackupUnix.Load(),
	}
	if e.wal != nil && !e.closed.Load() {
		e.walMu.Lock()
		if !e.closed.Load() {
			info.WALSegments = len(e.wal.sealed) + 1
			info.WALBytes = e.wal.totalBytes()
			info.WALRetiredSegments = e.wal.retiredSegs
			info.WALRetiredBytes = e.wal.retiredBytes
			info.WALTornTruncations = e.wal.tornTruncated
			info.WALQuarantinedSegments = e.wal.quarantinedSeg
			info.WALWarnings = append([]string(nil), e.wal.warnings...)
		}
		e.walMu.Unlock()
	}
	return info
}

// HasSeries reports whether seriesID has any buffered or flushed data.
func (e *Engine) HasSeries(seriesID string) bool {
	sh, _ := e.shardFor(seriesID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if len(sh.chunks[seriesID]) > 0 {
		return true
	}
	return len(sh.mem[seriesID]) > 0
}

// Close flushes every shard's memtable and releases all file handles.
func (e *Engine) Close() error {
	// The scrubber and ingest workers take shard locks, so both must be
	// fully stopped before lockAll — stopping them under the locks would
	// deadlock. stopIngest(true) drains queued batches first, so every
	// batch accepted before Close is flushed like a direct Write.
	e.stopScrubber()
	e.stopIngest(true)
	e.lockAll()
	defer e.unlockAll()
	if e.closed.Load() {
		return nil
	}
	var err error
	flushed := 0
	for _, sh := range e.shards {
		n, ferr := e.flushShardLocked(sh)
		flushed += n
		if ferr != nil {
			err = ferr
			break
		}
	}
	if err == nil && flushed > 0 {
		err = e.maybeRetireWAL()
	}
	if err == nil {
		err = e.pyrMaybeSave()
	}
	e.closed.Store(true)
	e.closeFiles()
	if mods := e.modsLog(); mods != nil {
		if cerr := mods.Close(); err == nil {
			err = cerr
		}
	}
	if e.wal != nil {
		e.walMu.Lock()
		cerr := e.wal.active.Close()
		e.walMu.Unlock()
		if err == nil {
			err = cerr
		}
	}
	return err
}

// Kill abandons the engine the way a process kill would: file handles are
// closed, nothing is flushed, the WAL is left as-is. Crash-recovery tests
// pair it with a fresh Open over the same directory.
func (e *Engine) Kill() {
	e.stopScrubber()
	e.stopIngest(false)
	e.lockAll()
	defer e.unlockAll()
	if e.closed.Load() {
		return
	}
	e.closed.Store(true)
	e.closeFiles()
	if mods := e.modsLog(); mods != nil {
		mods.Close()
	}
	if e.wal != nil {
		e.walMu.Lock()
		e.wal.active.Close()
		e.walMu.Unlock()
	}
}

// replayWAL applies one recovered WAL record to the owning shard's
// memtable. Sharded records (ops 3 and 4) carry the writer's shard index
// for debuggability, but routing always re-hashes the series id so a
// directory reopens correctly under a different NumShards. seq is the
// segment the record came from: inserts re-seed the shard's pendingMin
// watermark, checkpoints clear it and drop the shard's replayed memtable.
// Runs single-threaded during Open.
func (e *Engine) replayWAL(seq uint64, rec []byte) error {
	if len(rec) == 0 {
		return errors.New("empty record")
	}
	op := rec[0]
	body := rec[1:]
	if op == walOpInsertSharded || op == walOpDeleteSharded {
		var err error
		if _, body, err = encoding.Uvarint(body); err != nil {
			return fmt.Errorf("wal shard tag: %w", err)
		}
	}
	switch op {
	case walOpInsert, walOpInsertSharded:
		id, pts, err := decodeInsert(body)
		if err != nil {
			return err
		}
		sh, ix := e.shardFor(id)
		e.pyrMarkStalePoints(id, pts)
		sh.mem[id] = append(sh.mem[id], pts...)
		sh.memPts.Add(int64(len(pts)))
		if e.wal != nil && e.wal.pendingMin[ix] == 0 {
			e.wal.pendingMin[ix] = seq
		}
		return nil
	case walOpCheckpoint:
		shard, numShards, _, err := decodeCheckpoint(body)
		if err != nil {
			return err
		}
		// Honored only under the layout it was written for: with a matching
		// numShards, the records it clears route to exactly the shard it
		// names. Under any other layout replay keeps everything (redundant
		// but harmless — WAL order is preserved, so re-inserted points are
		// superseded by the flushed chunks exactly as they were live).
		if numShards != len(e.shards) {
			return nil
		}
		sh := e.shards[shard]
		sh.mem = make(map[string]series.Series)
		sh.memPts.Store(0)
		if e.wal != nil {
			e.wal.pendingMin[shard] = 0
		}
		return nil
	case walOpDelete, walOpDeleteSharded:
		d, err := decodeWALDelete(body)
		if err != nil {
			return err
		}
		// A delete reaches the WAL before the mods sidecar; a crash between
		// the two appends leaves it in the WAL only. Re-append it so the
		// delete applies to flushed chunks, not just replayed points.
		mods := e.modsLog()
		present := false
		for _, m := range mods.All() {
			if m == d {
				present = true
				break
			}
		}
		if !present {
			if err := mods.Append(d); err != nil {
				return err
			}
			e.bumpVersion(d.Version)
		}
		sh, _ := e.shardFor(d.SeriesID)
		e.pyrMarkStaleClosed(d.SeriesID, d.Start, d.End)
		sh.applyDeleteToMem(d)
		return nil
	default:
		return fmt.Errorf("unknown wal op %d", op)
	}
}

// quarantineChunk excludes a chunk whose bytes failed a CRC or decode
// check from all future snapshots. Shared by the query path (via
// Snapshot.OnQuarantine) and the integrity scrubber. Reports whether this
// call was the first to quarantine the chunk.
func (e *Engine) quarantineChunk(meta storage.ChunkMeta, err error) bool {
	e.quarMu.Lock()
	id := chunkID{meta.SeriesID, meta.Version}
	_, dup := e.quarantined[id]
	if !dup {
		e.quarantined[id] = err
	}
	e.quarMu.Unlock()
	if !dup {
		e.met.quarantines.Inc()
		// The chunk's points vanish from the merged view; cells that
		// included them are wrong until the next rebuild.
		e.pyrMarkStaleClosed(meta.SeriesID, meta.First.T, meta.Last.T)
	}
	return !dup
}

// sourceFor wraps a chunk file reader with query-time fault injection
// (innermost, so cached loads are not re-faulted), the transient-read
// retry layer (above injection, so a retry re-draws the fault; below the
// cache, so only settled reads are cached) and the engine's shared cache
// when caching is enabled.
func (e *Engine) sourceFor(r *tsfile.Reader) storage.ChunkSource {
	var src storage.ChunkSource = r
	if e.opts.WrapSource != nil {
		src = e.opts.WrapSource(src)
	}
	src = storage.WithRetry(src, e.retryPolicy())
	if e.cache == nil {
		return src
	}
	return cache.Wrap(src, e.cache)
}

// CacheStats reports chunk-cache effectiveness; zero when caching is off.
func (e *Engine) CacheStats() cache.Stats {
	return e.cache.Stats()
}
