// Package obs is the stdlib-only observability layer of the server: a
// concurrency-safe metrics registry with Prometheus-text and JSON
// exposition, query-scoped tracing carried via context.Context, a
// ring-buffer slow-query log, and slog helpers for request-scoped
// structured logging.
//
// Everything is nil-safe: a nil *Registry hands out nil instruments whose
// methods are no-ops, so instrumented hot paths cost one pointer check
// when observability is off (the default for library users; cmd/m4server
// always wires a registry in).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named instruments. All methods are safe for concurrent
// use, including on a nil receiver (which hands out nil instruments).
// An instrument is identified by name plus its full label set; asking
// twice for the same identity returns the same instrument.
type Registry struct {
	mu    sync.Mutex
	instr map[string]*instrument // key: name + serialized labels
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{instr: make(map[string]*instrument)}
}

// instrKind discriminates exposition types.
type instrKind uint8

const (
	kindCounter instrKind = iota
	kindGauge
	kindFuncCounter
	kindFuncGauge
	kindHistogram
)

func (k instrKind) promType() string {
	switch k {
	case kindCounter, kindFuncCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// instrument is one registered metric series.
type instrument struct {
	name     string
	labels   string   // serialized {k="v",...} or ""
	labelKVs []string // the raw k1, v1, k2, v2, ... list behind labels
	kind     instrKind

	val  atomic.Int64      // counters and integer gauges
	fn   func() float64    // func-backed counters/gauges
	hist *histogramBuckets // histograms
}

// L builds an ordered label list; pass k1, v1, k2, v2, ...
// Labels are serialized in the order given (callers keep them sorted for
// stable exposition).
func L(kv ...string) []string { return kv }

func serializeLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", kv[i], kv[i+1])
	}
	sb.WriteByte('}')
	return sb.String()
}

// lookup returns the instrument for (name, labels), creating it with kind
// on first use. Asking for an existing name with a different kind is a
// programming error; the existing instrument wins so exposition stays
// consistent.
func (r *Registry) lookup(name string, labels []string, kind instrKind) *instrument {
	if r == nil {
		return nil
	}
	ls := serializeLabels(labels)
	key := name + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.instr[key]; ok {
		return in
	}
	in := &instrument{name: name, labels: ls, labelKVs: append([]string(nil), labels...), kind: kind}
	if kind == kindHistogram {
		in.hist = newHistogramBuckets(defaultBuckets)
	}
	r.instr[key] = in
	return in
}

// Counter is a monotonically increasing int64. Nil-safe.
type Counter struct{ in *instrument }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	in := r.lookup(name, labels, kindCounter)
	if in == nil {
		return nil
	}
	return &Counter{in: in}
}

// Add increments the counter by d (d < 0 is ignored).
func (c *Counter) Add(d int64) {
	if c == nil || d <= 0 {
		return
	}
	c.in.val.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.in.val.Load()
}

// Gauge is a settable int64 level. Nil-safe.
type Gauge struct{ in *instrument }

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	in := r.lookup(name, labels, kindGauge)
	if in == nil {
		return nil
	}
	return &Gauge{in: in}
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.in.val.Store(v)
}

// Add moves the gauge by d (either sign).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.in.val.Add(d)
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.in.val.Load()
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	if in := r.lookup(name, labels, kindFuncGauge); in != nil {
		in.fn = fn
	}
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time (for sources that keep their own monotonic counts, like
// the chunk cache). fn must be safe for concurrent use.
func (r *Registry) CounterFunc(name string, fn func() float64, labels ...string) {
	if in := r.lookup(name, labels, kindFuncCounter); in != nil {
		in.fn = fn
	}
}

// defaultBuckets are latency-shaped upper bounds in seconds: 50µs .. ~26s
// in powers of four, a spread that resolves both in-memory span tasks and
// slow disk-bound queries with 10 buckets.
var defaultBuckets = []float64{
	50e-6, 200e-6, 800e-6, 3.2e-3, 12.8e-3, 51.2e-3, 204.8e-3, 819.2e-3, 3.2768, 13.1072,
}

// histogramBuckets is the atomic state of one histogram: cumulative
// exposition is computed at read time from per-bucket counts.
type histogramBuckets struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, last = +Inf overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
}

func newHistogramBuckets(bounds []float64) *histogramBuckets {
	return &histogramBuckets{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Histogram is a fixed-bucket distribution of float64 observations
// (seconds, by convention). Nil-safe.
type Histogram struct{ in *instrument }

// Histogram returns the named histogram, creating it with the default
// latency buckets on first use.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	in := r.lookup(name, labels, kindHistogram)
	if in == nil {
		return nil
	}
	return &Histogram{in: in}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	b := h.in.hist
	i := sort.SearchFloat64s(b.bounds, v)
	b.counts[i].Add(1)
	b.count.Add(1)
	for {
		old := b.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if b.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.in.hist.count.Load()
}

// sorted returns the instruments ordered by (name, labels) for stable
// exposition.
func (r *Registry) sorted() []*instrument {
	r.mu.Lock()
	out := make([]*instrument, 0, len(r.instr))
	for _, in := range r.instr {
		out = append(out, in)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (version 0.0.4). A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var sb strings.Builder
	lastName := ""
	for _, in := range r.sorted() {
		if in.name != lastName {
			fmt.Fprintf(&sb, "# TYPE %s %s\n", in.name, in.kind.promType())
			lastName = in.name
		}
		switch in.kind {
		case kindCounter, kindGauge:
			fmt.Fprintf(&sb, "%s%s %d\n", in.name, in.labels, in.val.Load())
		case kindFuncCounter, kindFuncGauge:
			fmt.Fprintf(&sb, "%s%s %s\n", in.name, in.labels, formatFloat(in.fn()))
		case kindHistogram:
			b := in.hist
			cum := int64(0)
			for i, bound := range b.bounds {
				cum += b.counts[i].Load()
				fmt.Fprintf(&sb, "%s_bucket%s %d\n", in.name, mergeLabels(in.labels, "le", formatFloat(bound)), cum)
			}
			cum += b.counts[len(b.bounds)].Load()
			fmt.Fprintf(&sb, "%s_bucket%s %d\n", in.name, mergeLabels(in.labels, "le", "+Inf"), cum)
			fmt.Fprintf(&sb, "%s_sum%s %s\n", in.name, in.labels, formatFloat(math.Float64frombits(b.sumBits.Load())))
			fmt.Fprintf(&sb, "%s_count%s %d\n", in.name, in.labels, b.count.Load())
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// mergeLabels appends one extra label to an already-serialized label set.
func mergeLabels(ls, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, v)
	if ls == "" {
		return "{" + extra + "}"
	}
	return ls[:len(ls)-1] + "," + extra + "}"
}

// Snapshot returns every instrument as a JSON-friendly map keyed by
// name{labels}. Counters and gauges map to numbers; histograms to an
// object with count, sum and per-bucket cumulative counts.
func (r *Registry) Snapshot() map[string]interface{} {
	out := map[string]interface{}{}
	if r == nil {
		return out
	}
	for _, in := range r.sorted() {
		key := in.name + in.labels
		switch in.kind {
		case kindCounter, kindGauge:
			out[key] = in.val.Load()
		case kindFuncCounter, kindFuncGauge:
			out[key] = in.fn()
		case kindHistogram:
			hs := in.hist.sample()
			buckets := map[string]int64{}
			for i, bound := range hs.Bounds {
				buckets[formatFloat(bound)] = hs.Counts[i]
			}
			buckets["+Inf"] = hs.Counts[len(hs.Bounds)]
			out[key] = map[string]interface{}{
				"count":   hs.Count,
				"sum":     hs.Sum,
				"buckets": buckets,
				// Estimated quantiles (see HistogramSample.Quantile): fixed
				// buckets resolve these well enough for dashboards, and
				// surfacing them here saves every scraper the arithmetic.
				"p50": hs.Quantile(0.50),
				"p95": hs.Quantile(0.95),
				"p99": hs.Quantile(0.99),
			}
		}
	}
	return out
}
