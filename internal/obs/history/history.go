// Package history is the self-observability sampler: it periodically walks
// the obs metrics registry and appends every instrument's value as points
// into dedicated system series (root.sys.<metric>[.<label>...][.<field>])
// written through the same storage engine the server serves user data from.
// The database dogfoods its own representation: metric history is stored in
// the LSM engine, covered by the WAL, backups, the scrubber and the rollup
// pyramid, and queried/rendered through the paper's M4 operator — "why did
// p99 spike at 14:02" is answered by the node itself with a
// `SELECT M4(*) FROM root.sys.*` query, no external Prometheus required.
//
// Cardinality is bounded by construction: the series set is a pure function
// of the registry's instrument set, whose names and label values are fixed
// finite vocabularies (endpoints, status classes, operator names). Sampling
// moves values, never mints instruments, so the sampler observing its own
// selfmetrics_* counters converges instead of feeding back: the second tick
// sees the same series set as the hundredth. Tests assert this.
package history

import (
	"log/slog"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"

	"m4lsm/internal/obs"
	"m4lsm/internal/series"
)

// DefaultPrefix is where system series live, beside (never colliding with)
// user series — user series ids are free-form, but the root.sys. namespace
// is documented as reserved.
const DefaultPrefix = "root.sys."

// Sink receives sampled points; *lsm.Engine satisfies it.
type Sink interface {
	Write(seriesID string, pts ...series.Point) error
}

// Config wires a Sampler.
type Config struct {
	// Registry is walked every tick. Required.
	Registry *obs.Registry
	// Sink receives the points. Required.
	Sink Sink
	// Interval between samples (default 1s).
	Interval time.Duration
	// Prefix overrides DefaultPrefix.
	Prefix string
	// Quantiles are the estimated quantiles persisted per histogram as
	// .p<percent> series (default 0.50, 0.95, 0.99).
	Quantiles []float64
	// SkipBuckets drops the per-bucket .bucket.le_* series, keeping only
	// count/sum/quantiles — roughly a 3x reduction in system series for
	// installations that never query raw distributions.
	SkipBuckets bool
	// Logger receives rate-limited write-failure logs; nil uses
	// slog.Default().
	Logger *slog.Logger
}

// Sampler periodically snapshots a metrics registry into a Sink. Start
// launches the ticker goroutine; Stop halts it and waits for it to exit.
// SampleOnce is the core and is exported so tests (and the exper sweep)
// drive sampling with controlled clocks.
type Sampler struct {
	cfg Config

	// Own health instruments, registered in the same registry — they are
	// sampled like everything else (bounded: four fixed instruments).
	samples  *obs.Counter
	points   *obs.Counter
	writeErr *obs.Counter
	lastUnix *obs.Gauge

	// Derived-rate state: previous counter readings for the qps and cache
	// hit-ratio series. Bounded by the registry's instrument set.
	prev     map[string]float64
	prevWhen time.Time

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}

	loggedErr bool
}

// New builds a Sampler; it does not start sampling.
func New(cfg Config) *Sampler {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Prefix == "" {
		cfg.Prefix = DefaultPrefix
	}
	if len(cfg.Quantiles) == 0 {
		cfg.Quantiles = []float64{0.50, 0.95, 0.99}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	return &Sampler{
		cfg:      cfg,
		samples:  cfg.Registry.Counter("selfmetrics_samples_total"),
		points:   cfg.Registry.Counter("selfmetrics_points_total"),
		writeErr: cfg.Registry.Counter("selfmetrics_write_errors_total"),
		lastUnix: cfg.Registry.Gauge("selfmetrics_last_sample_unix"),
		prev:     map[string]float64{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Interval reports the configured sampling period.
func (s *Sampler) Interval() time.Duration { return s.cfg.Interval }

// Start launches the background ticker. Idempotent.
func (s *Sampler) Start() {
	s.startOnce.Do(func() {
		go func() {
			defer close(s.done)
			tick := time.NewTicker(s.cfg.Interval)
			defer tick.Stop()
			for {
				select {
				case <-s.stop:
					return
				case now := <-tick.C:
					s.SampleOnce(now)
				}
			}
		}()
	})
}

// Stop halts the ticker and waits for the goroutine to exit. Idempotent;
// safe on a never-started sampler.
func (s *Sampler) Stop() {
	s.stopOnce.Do(func() {
		close(s.stop)
	})
	s.startOnce.Do(func() { close(s.done) }) // never started: nothing to wait for
	<-s.done
}

// SampleOnce walks the registry once, writing one point per system series
// at timestamp now. It returns the number of points written and the first
// write error (sampling continues past errors: a read-only engine drops
// this tick's points, it does not wedge the sampler).
func (s *Sampler) SampleOnce(now time.Time) (int, error) {
	t := now.UnixMilli()
	n := 0
	var firstErr error
	write := func(id string, v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return
		}
		if err := s.cfg.Sink.Write(id, series.Point{T: t, V: v}); err != nil {
			s.writeErr.Inc()
			if firstErr == nil {
				firstErr = err
			}
			if !s.loggedErr {
				s.loggedErr = true
				s.cfg.Logger.Warn("self-metrics: write", "series", id, "err", err)
			}
			return
		}
		n++
	}

	var qCount, rCount, cacheHits, cacheMisses float64
	for _, sm := range s.cfg.Registry.Samples() {
		base := s.cfg.Prefix + sm.Name + labelSuffix(sm.Labels)
		switch sm.Kind {
		case obs.SampleCounter, obs.SampleGauge:
			write(base, sm.Value)
		case obs.SampleHistogram:
			write(base+".count", float64(sm.Hist.Count))
			write(base+".sum", sm.Hist.Sum)
			for _, q := range s.cfg.Quantiles {
				write(base+quantileSuffix(q), sm.Hist.Quantile(q))
			}
			if !s.cfg.SkipBuckets {
				for i, bound := range sm.Hist.Bounds {
					write(base+".bucket.le_"+sanitize(formatBound(bound)), float64(sm.Hist.Counts[i]))
				}
				write(base+".bucket.le_inf", float64(sm.Hist.Counts[len(sm.Hist.Bounds)]))
			}
		}
		// Inputs for the derived series below.
		switch sm.Name {
		case "http_requests_total":
			if labelValue(sm.Labels, "endpoint") == "/query" {
				qCount += sm.Value
			}
			if labelValue(sm.Labels, "endpoint") == "/render" {
				rCount += sm.Value
			}
		case "chunk_cache_hits_total":
			cacheHits = sm.Value
		case "chunk_cache_misses_total":
			cacheMisses = sm.Value
		}
	}

	// Derived series: per-interval rates a dashboard wants directly, which
	// cumulative counters cannot show without client-side differencing.
	dt := now.Sub(s.prevWhen).Seconds()
	if s.prevWhen.IsZero() || dt <= 0 {
		dt = 0
	}
	rate := func(key string, cur float64) float64 {
		prev, ok := s.prev[key]
		s.prev[key] = cur
		if !ok || dt <= 0 || cur < prev {
			return 0
		}
		return (cur - prev) / dt
	}
	delta := func(key string, cur float64) float64 {
		prev, ok := s.prev[key]
		s.prev[key] = cur
		if !ok || cur < prev {
			return 0
		}
		return cur - prev
	}
	write(s.cfg.Prefix+"derived.qps", rate("qps", qCount+rCount))
	dh := delta("cache_hits", cacheHits)
	dm := delta("cache_misses", cacheMisses)
	ratio := 0.0
	if dh+dm > 0 {
		ratio = dh / (dh + dm)
	}
	write(s.cfg.Prefix+"derived.cache_hit_ratio", ratio)
	s.prevWhen = now

	s.samples.Inc()
	s.points.Add(int64(n))
	s.lastUnix.Set(now.Unix())
	return n, firstErr
}

// SeriesName maps one instrument identity to its system series id, the
// naming contract between the sampler, the dashboard and tests:
// <prefix><metric>[.<key>_<value>...] with label values sanitized to the
// m4ql identifier alphabet.
func SeriesName(prefix, metric string, labels []string) string {
	if prefix == "" {
		prefix = DefaultPrefix
	}
	return prefix + metric + labelSuffix(labels)
}

// labelSuffix renders the k1,v1,... list as .k1_v1.k2_v2 with sanitized
// values.
func labelSuffix(kvs []string) string {
	if len(kvs) == 0 {
		return ""
	}
	var sb strings.Builder
	for i := 0; i+1 < len(kvs); i += 2 {
		sb.WriteByte('.')
		sb.WriteString(sanitize(kvs[i]))
		sb.WriteByte('_')
		sb.WriteString(sanitize(kvs[i+1]))
	}
	return sb.String()
}

// sanitize maps an arbitrary label value into the identifier alphabet the
// m4ql lexer accepts inside a series id ([A-Za-z0-9_]): every other byte
// becomes '_', runs collapse, and edges are trimmed. Distinct values can in
// principle collide after sanitization; the registry's label vocabularies
// (endpoints, status classes, operator names) do not.
func sanitize(v string) string {
	var sb strings.Builder
	lastUnderscore := false
	for i := 0; i < len(v); i++ {
		c := v[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
		switch {
		case ok:
			sb.WriteByte(c)
			lastUnderscore = false
		case sb.Len() == 0 || lastUnderscore:
			// Skip: no leading underscore, no runs.
		default:
			sb.WriteByte('_')
			lastUnderscore = true
		}
	}
	out := strings.TrimSuffix(sb.String(), "_")
	if out == "" {
		return "x"
	}
	return out
}

// quantileSuffix renders 0.99 as ".p99", 0.5 as ".p50", 0.999 as ".p99_9".
func quantileSuffix(q float64) string {
	pct := q * 100
	whole := int(pct)
	frac := pct - float64(whole)
	if frac < 1e-9 {
		return ".p" + strconv.Itoa(whole)
	}
	return ".p" + strconv.Itoa(whole) + "_" + strconv.Itoa(int(frac*10+0.5))
}

// formatBound renders a bucket bound in fixed-point ("0.00005",
// "13.1072") — never an exponent, so sanitize maps it predictably into the
// identifier alphabet ("0_00005").
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// labelValue returns the value of key in a k1,v1,... list ("" if absent).
func labelValue(kvs []string, key string) string {
	for i := 0; i+1 < len(kvs); i += 2 {
		if kvs[i] == key {
			return kvs[i+1]
		}
	}
	return ""
}
