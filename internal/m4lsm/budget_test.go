package m4lsm

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"m4lsm/internal/govern"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4udf"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// budgetSnapshot builds a snapshot whose chunks are all split by the query
// spans, so every chunk genuinely needs loading (BP/TP bounds must be
// resolved by materializing). The deletes force FP/LP loads too.
func budgetSnapshot(t *testing.T) (*storage.Snapshot, m4.Query) {
	t.Helper()
	chunks := map[storage.Version]series.Series{}
	for v := storage.Version(1); v <= 6; v++ {
		var s series.Series
		base := int64(v-1) * 50
		for i := int64(0); i < 60; i++ {
			s = append(s, series.Point{T: base + i, V: float64((base + i) % 23)})
		}
		chunks[v] = s
	}
	snap := buildSnapshot(t, chunks, []storage.Delete{{SeriesID: "s", Start: 3, End: 5, Version: 100}})
	snap.Warnings = &storage.Warnings{}
	q := m4.Query{Tqs: 0, Tqe: 310, W: 7}
	return snap, q
}

// TestBudgetGenerousEqualsUnbudgeted: a budget the query fits inside must
// not change the answer at all — bit-for-bit, warning-free.
func TestBudgetGenerousEqualsUnbudgeted(t *testing.T) {
	snap, q := budgetSnapshot(t)
	want, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}
	snap2, _ := budgetSnapshot(t)
	b := govern.NewBudget(govern.Limits{MaxChunks: 1 << 20, MaxPoints: 1 << 30, Timeout: time.Hour})
	got, err := ComputeWithOptions(snap2, q, Options{Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, got, want, "generous budget")
	if n := snap2.Warnings.Len(); n != 0 {
		t.Fatalf("generous budget produced %d warnings: %v", n, snap2.Warnings.List())
	}
	if chunks, points := b.Used(); chunks == 0 || points == 0 {
		t.Fatalf("budget not charged (chunks=%d points=%d)", chunks, points)
	}
}

// TestBudgetExhaustionDegrades: a budget too small for the query degrades
// it like unreadable chunks — warnings, no error, no quarantine — in
// lenient mode, and fails typed in strict mode.
func TestBudgetExhaustionDegrades(t *testing.T) {
	snap, q := budgetSnapshot(t)
	quarantined := 0
	snap.OnQuarantine = func(storage.ChunkMeta, error) { quarantined++ }
	b := govern.NewBudget(govern.Limits{MaxChunks: 2})
	if _, err := ComputeWithOptions(snap, q, Options{Budget: b}); err != nil {
		t.Fatalf("lenient budgeted query must degrade, not fail: %v", err)
	}
	if snap.Warnings.Len() == 0 {
		t.Fatal("no warnings despite exhausted budget")
	}
	for _, w := range snap.Warnings.List() {
		if strings.Contains(w, "unreadable") {
			t.Fatalf("budget refusal reported as unreadable chunk: %q", w)
		}
	}
	if quarantined != 0 {
		t.Fatalf("budget refusal quarantined %d chunks", quarantined)
	}

	snap2, _ := budgetSnapshot(t)
	_, err := ComputeWithOptions(snap2, q, Options{Strict: true, Budget: govern.NewBudget(govern.Limits{MaxChunks: 2})})
	if !errors.Is(err, govern.ErrBudgetExceeded) {
		t.Fatalf("strict budgeted query: got %v, want ErrBudgetExceeded", err)
	}
	var be *govern.BudgetError
	if !errors.As(err, &be) || be.Kind != "chunks" {
		t.Fatalf("error does not carry a chunks BudgetError: %v", err)
	}
}

// TestBudgetPointLimitUDF: the UDF baseline honours the same budget through
// mergeread.
func TestBudgetPointLimitUDF(t *testing.T) {
	snap, q := budgetSnapshot(t)
	if _, err := m4udf.ComputeWithOptions(snap, q, m4udf.Options{
		Budget: govern.NewBudget(govern.Limits{MaxPoints: 100}),
	}); err != nil {
		t.Fatalf("lenient budgeted UDF query must degrade, not fail: %v", err)
	}
	if snap.Warnings.Len() == 0 {
		t.Fatal("no warnings despite exhausted point budget")
	}
	snap2, _ := budgetSnapshot(t)
	_, err := m4udf.ComputeWithOptions(snap2, q, m4udf.Options{
		Strict: true,
		Budget: govern.NewBudget(govern.Limits{MaxPoints: 100}),
	})
	if !errors.Is(err, govern.ErrBudgetExceeded) {
		t.Fatalf("strict budgeted UDF query: got %v, want ErrBudgetExceeded", err)
	}
}

// TestBudgetDeadlineStrictAborts: an already-expired budget deadline fails
// a strict query at the first task boundary with the typed error.
func TestBudgetDeadlineStrictAborts(t *testing.T) {
	snap, q := budgetSnapshot(t)
	b := govern.NewBudget(govern.Limits{Timeout: time.Nanosecond})
	time.Sleep(time.Millisecond) // let the deadline pass
	_, err := ComputeWithOptions(snap, q, Options{Strict: true, Budget: b})
	if !errors.Is(err, govern.ErrBudgetExceeded) {
		t.Fatalf("strict expired-deadline query: got %v, want ErrBudgetExceeded", err)
	}
}

// TestDeadlineRaceNoLeak races context.DeadlineExceeded against task
// completion in the span×G worker pool across a sweep of timeouts: some
// runs finish, some are cut mid-wave. Whatever the outcome, ComputeContext
// must return only after every worker has joined — the stats counters are
// final (no late increments) and no goroutine outlives its query.
func TestDeadlineRaceNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		// Allow the runtime a moment to retire exiting goroutines.
		deadline := time.Now().Add(3 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if n := runtime.NumGoroutine(); n > before {
			t.Errorf("goroutine leak: %d before, %d after deadline races", before, n)
		}
	})

	// A delaying source gives the deadline loads to land in the middle of.
	snap, _ := slowSnapshot(t, 12, 200*time.Microsecond)
	q := m4.Query{Tqs: 0, Tqe: 240, W: 7}
	want, err := Compute(snap, q)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 40; i++ {
		timeout := time.Duration(i) * 150 * time.Microsecond
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		got, err := ComputeContext(ctx, snap, q, Options{Parallelism: 8})
		cancel()
		switch {
		case err == nil:
			assertEquivalent(t, got, want, "completed under deadline")
		case errors.Is(err, context.DeadlineExceeded):
			// Cut mid-wave: fine, as long as the pool joined. Counters
			// must be final — any further movement means a straggler.
			s1 := snap.Stats.Load()
			runtime.Gosched()
			time.Sleep(2 * time.Millisecond)
			if s2 := snap.Stats.Load(); s1 != s2 {
				t.Fatalf("run %d: stats moved after ComputeContext returned:\n %+v\n-> %+v", i, s1, s2)
			}
		default:
			t.Fatalf("run %d: unexpected error: %v", i, err)
		}
	}
}
