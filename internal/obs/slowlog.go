package obs

import (
	"sync"
	"time"
)

// SlowEntry is one recorded slow query.
type SlowEntry struct {
	When      time.Time `json:"when"`
	RequestID string    `json:"requestId,omitempty"`
	Query     string    `json:"query"`
	ElapsedNs int64     `json:"elapsedNs"`
	Status    int       `json:"status"`
	Partial   bool      `json:"partial,omitempty"`
	Error     string    `json:"error,omitempty"`
}

// SlowLog is a fixed-capacity ring buffer of queries slower than a
// threshold, served by /debug/slowlog. Safe for concurrent use; the nil
// *SlowLog discards everything.
type SlowLog struct {
	threshold time.Duration

	mu      sync.Mutex
	entries []SlowEntry // ring storage
	next    int         // write position
	filled  bool
}

// NewSlowLog builds a slow log keeping the last capacity queries at least
// threshold slow. threshold 0 records every query (useful for tests and
// short-lived debugging); capacity <= 0 defaults to 128.
func NewSlowLog(threshold time.Duration, capacity int) *SlowLog {
	if capacity <= 0 {
		capacity = 128
	}
	return &SlowLog{threshold: threshold, entries: make([]SlowEntry, capacity)}
}

// Threshold returns the minimum duration recorded (0 on nil records all).
func (s *SlowLog) Threshold() time.Duration {
	if s == nil {
		return 0
	}
	return s.threshold
}

// Record stores e if it is at or above the threshold, overwriting the
// oldest entry when full.
func (s *SlowLog) Record(e SlowEntry) {
	if s == nil || time.Duration(e.ElapsedNs) < s.threshold {
		return
	}
	s.mu.Lock()
	s.entries[s.next] = e
	s.next++
	if s.next == len(s.entries) {
		s.next = 0
		s.filled = true
	}
	s.mu.Unlock()
}

// Entries returns the recorded queries, newest first. Nil returns nil.
func (s *SlowLog) Entries() []SlowEntry {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.next
	if s.filled {
		n = len(s.entries)
	}
	out := make([]SlowEntry, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the most recent write position.
		pos := s.next - 1 - i
		if pos < 0 {
			pos += len(s.entries)
		}
		out = append(out, s.entries[pos])
	}
	return out
}
