package m4lsm

import (
	"bytes"
	"fmt"

	"m4lsm/internal/m4"
	intm4lsm "m4lsm/internal/m4lsm"
	"m4lsm/internal/mergeread"
	"m4lsm/internal/series"
	"m4lsm/internal/viz"
)

// Raw returns the merged ("latest") points of a series in the half-open
// time range [tqs, tqe), in time order: overwrites resolved by version,
// deletes applied. This is the full-resolution read path that M4 queries
// avoid scanning.
func (db *DB) Raw(seriesID string, tqs, tqe int64) ([]Point, error) {
	if tqe <= tqs {
		return nil, fmt.Errorf("m4lsm: empty range [%d, %d)", tqs, tqe)
	}
	r := series.TimeRange{Start: tqs, End: tqe}
	snap, err := db.engine.Snapshot(seriesID, r)
	if err != nil {
		return nil, err
	}
	merged, err := mergeread.Merge(snap, r)
	if err != nil {
		return nil, err
	}
	out := make([]Point, len(merged))
	for i, p := range merged {
		out[i] = Point{Time: p.T, Value: p.V}
	}
	return out, nil
}

// Render draws the series over [tqs, tqe) as a two-color PNG line chart of
// w×h pixels and returns the encoded image. The chart is computed with the
// M4-LSM operator at w spans, so it is pixel-identical to rendering the
// full series (the paper's error-free guarantee) at a fraction of the
// read cost.
func (db *DB) Render(seriesID string, tqs, tqe int64, w, h int) ([]byte, error) {
	q := m4.Query{Tqs: tqs, Tqe: tqe, W: w}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if h <= 0 {
		return nil, fmt.Errorf("m4lsm: height must be positive, got %d", h)
	}
	snap, err := db.engine.Snapshot(seriesID, q.Range())
	if err != nil {
		return nil, err
	}
	aggs, err := intm4lsm.Compute(snap, q)
	if err != nil {
		return nil, err
	}
	reduced := m4.Points(aggs)
	vp := viz.ViewportFor(reduced, tqs, tqe)
	canvas := viz.Rasterize(reduced, vp, w, h)
	var buf bytes.Buffer
	if err := canvas.WritePNG(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
