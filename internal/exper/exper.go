// Package exper is the experiment harness: it rebuilds the storage states
// and queries of the paper's evaluation (§4) and measures both operators.
// Every figure of the evaluation section has a Run function here; the
// cmd/m4bench binary prints the resulting series, and bench_test.go wraps
// them as Go benchmarks.
//
// Latencies are wall-clock on whatever machine runs the harness. Absolute
// numbers differ from the paper's HDD/Java testbed, so each measurement
// carries the I/O and decode counters alongside: the figures' shapes are
// driven by those counters.
package exper

import (
	"fmt"
	"math"
	"os"
	"time"

	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/m4udf"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
	"m4lsm/internal/workload"
)

// Config scopes an experiment run.
type Config struct {
	// Scale shrinks the paper's dataset cardinalities (1 = paper scale,
	// default 0.01 for laptop-quick runs).
	Scale float64
	// ChunkSize is points per chunk (paper: 1000).
	ChunkSize int
	// W is the default number of time spans (paper: 1000).
	W int
	// Reps is how many times each query runs; the minimum latency is
	// reported (cold I/O noise suppression). Default 3.
	Reps int
	// Seed drives all generators.
	Seed int64
	// Dir is the working directory for database files; a temporary
	// directory is used when empty.
	Dir string
	// Parallelism is passed to both operators (0 = GOMAXPROCS, 1 =
	// sequential). The scaling experiment overrides it per measurement.
	Parallelism int
	// Datasets to run; defaults to the four Table 2 presets.
	Datasets []workload.Preset
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.01
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 1000
	}
	if c.W <= 0 {
		c.W = 1000
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if len(c.Datasets) == 0 {
		c.Datasets = workload.Presets()
	}
	return c
}

// Measurement is one point of one figure: a dataset, the varied parameter
// value, and the latency plus cost counters of both operators.
type Measurement struct {
	Dataset string
	Param   string  // name of the varied parameter
	X       float64 // value of the varied parameter

	UDFLatency time.Duration
	LSMLatency time.Duration
	UDFStats   storage.Stats
	LSMStats   storage.Stats
}

// Speedup returns UDF latency / LSM latency.
func (m Measurement) Speedup() float64 {
	if m.LSMLatency <= 0 {
		return math.Inf(1)
	}
	return float64(m.UDFLatency) / float64(m.LSMLatency)
}

// builtDataset is a loaded storage state ready for queries.
type builtDataset struct {
	engine *lsm.Engine
	data   series.Series
	tqs    int64
	tqe    int64 // exclusive end covering all data
}

// build generates the preset at the config's scale and loads it with the
// requested storage shape.
func build(cfg Config, p workload.Preset, overlap float64, del workload.DeleteOptions, dir string) (*builtDataset, error) {
	n := int(float64(p.Points) * cfg.Scale)
	if n < 10 {
		n = 10
	}
	data := p.Generate(n, cfg.Seed)
	e, err := lsm.Open(lsm.Options{Dir: dir, FlushThreshold: cfg.ChunkSize, DisableWAL: true})
	if err != nil {
		return nil, err
	}
	if err := workload.Load(e, p.Name, data, workload.LoadOptions{
		ChunkSize:       cfg.ChunkSize,
		OverlapFraction: overlap,
		Seed:            cfg.Seed,
	}); err != nil {
		e.Close()
		return nil, err
	}
	if del.Count > 0 {
		if err := workload.ApplyDeletes(e, p.Name, data, del); err != nil {
			e.Close()
			return nil, err
		}
	}
	return &builtDataset{
		engine: e,
		data:   data,
		tqs:    data[0].T,
		tqe:    data[len(data)-1].T + 1,
	}, nil
}

func (b *builtDataset) close() { b.engine.Close() }

// measure runs the query with both operators Reps times and keeps the
// fastest run of each.
func measure(cfg Config, b *builtDataset, name string, q m4.Query) (Measurement, error) {
	m := Measurement{Dataset: name, UDFLatency: math.MaxInt64, LSMLatency: math.MaxInt64}
	for rep := 0; rep < cfg.Reps; rep++ {
		snap, err := b.engine.Snapshot(name, q.Range())
		if err != nil {
			return m, err
		}
		start := time.Now()
		udfAggs, err := m4udf.ComputeWithOptions(snap, q, m4udf.Options{Parallelism: cfg.Parallelism})
		if err != nil {
			return m, err
		}
		if d := time.Since(start); d < m.UDFLatency {
			m.UDFLatency = d
			m.UDFStats = snap.Stats.Load()
		}

		snap, err = b.engine.Snapshot(name, q.Range())
		if err != nil {
			return m, err
		}
		start = time.Now()
		lsmAggs, err := m4lsm.ComputeWithOptions(snap, q, m4lsm.Options{Parallelism: cfg.Parallelism})
		if err != nil {
			return m, err
		}
		if d := time.Since(start); d < m.LSMLatency {
			m.LSMLatency = d
			m.LSMStats = snap.Stats.Load()
		}

		// Sanity: the operators must agree on every span.
		if rep == 0 {
			for i := range lsmAggs {
				if !m4.Equivalent(lsmAggs[i], udfAggs[i]) {
					return m, fmt.Errorf("%s: operators disagree on span %d: lsm %v, udf %v",
						name, i, lsmAggs[i], udfAggs[i])
				}
			}
		}
	}
	return m, nil
}

func tempDir(cfg Config, tag string) (string, func(), error) {
	if cfg.Dir != "" {
		dir := fmt.Sprintf("%s/%s", cfg.Dir, tag)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", nil, err
		}
		return dir, func() {}, nil
	}
	dir, err := os.MkdirTemp("", "m4lsm-"+tag+"-")
	if err != nil {
		return "", nil, err
	}
	return dir, func() { os.RemoveAll(dir) }, nil
}

// Fig10W is the parameter sweep of §4.1.
var Fig10W = []int{10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}

// RunFig10 varies the number of time spans w over the full series
// (Figure 10): M4-UDF should be flat, M4-LSM should grow with w but stay
// well below it through w=1000.
func RunFig10(cfg Config) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	var out []Measurement
	for di, p := range cfg.Datasets {
		dir, cleanup, err := tempDir(cfg, fmt.Sprintf("fig10-%d", di))
		if err != nil {
			return nil, err
		}
		b, err := build(cfg, p, 0.1, workload.DeleteOptions{}, dir)
		if err != nil {
			cleanup()
			return nil, err
		}
		for _, w := range Fig10W {
			m, err := measure(cfg, b, p.Name, m4.Query{Tqs: b.tqs, Tqe: b.tqe, W: w})
			if err != nil {
				b.close()
				cleanup()
				return nil, err
			}
			m.Param, m.X = "w", float64(w)
			out = append(out, m)
		}
		b.close()
		cleanup()
	}
	return out, nil
}

// Fig11Fractions is the query-range sweep of §4.2, as fractions of the
// full series range.
var Fig11Fractions = []float64{1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2, 1}

// RunFig11 varies the query time range length (Figure 11): M4-UDF grows
// steeply with the range; M4-LSM grows slowly.
func RunFig11(cfg Config) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	var out []Measurement
	for di, p := range cfg.Datasets {
		dir, cleanup, err := tempDir(cfg, fmt.Sprintf("fig11-%d", di))
		if err != nil {
			return nil, err
		}
		b, err := build(cfg, p, 0.1, workload.DeleteOptions{}, dir)
		if err != nil {
			cleanup()
			return nil, err
		}
		full := b.tqe - b.tqs
		for _, f := range Fig11Fractions {
			tqe := b.tqs + int64(float64(full)*f)
			if tqe <= b.tqs {
				tqe = b.tqs + 1
			}
			m, err := measure(cfg, b, p.Name, m4.Query{Tqs: b.tqs, Tqe: tqe, W: cfg.W})
			if err != nil {
				b.close()
				cleanup()
				return nil, err
			}
			m.Param, m.X = "rangeFraction", f
			out = append(out, m)
		}
		b.close()
		cleanup()
	}
	return out, nil
}

// Fig12Overlaps is the chunk-overlap sweep of §4.3.
var Fig12Overlaps = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}

// RunFig12 varies the chunk overlap percentage (Figure 12): M4-UDF grows
// with overlap (merge CPU), M4-LSM stays nearly constant (merge free).
func RunFig12(cfg Config) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	var out []Measurement
	for di, p := range cfg.Datasets {
		for oi, overlap := range Fig12Overlaps {
			dir, cleanup, err := tempDir(cfg, fmt.Sprintf("fig12-%d-%d", di, oi))
			if err != nil {
				return nil, err
			}
			b, err := build(cfg, p, overlap, workload.DeleteOptions{}, dir)
			if err != nil {
				cleanup()
				return nil, err
			}
			m, err := measure(cfg, b, p.Name, m4.Query{Tqs: b.tqs, Tqe: b.tqe, W: cfg.W})
			b.close()
			cleanup()
			if err != nil {
				return nil, err
			}
			m.Param, m.X = "overlapPct", overlap*100
			out = append(out, m)
		}
	}
	return out, nil
}

// Fig13DeletePcts is the delete-frequency sweep of §4.4: deletes issued
// as a percentage of the chunk count.
var Fig13DeletePcts = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}

// RunFig13 varies the delete percentage (Figure 13): M4-UDF stays flat,
// M4-LSM grows mildly but remains small.
func RunFig13(cfg Config) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	var out []Measurement
	for di, p := range cfg.Datasets {
		for pi, pct := range Fig13DeletePcts {
			dir, cleanup, err := tempDir(cfg, fmt.Sprintf("fig13-%d-%d", di, pi))
			if err != nil {
				return nil, err
			}
			n := int(float64(p.Points) * cfg.Scale)
			if n < 10 {
				n = 10
			}
			nChunks := (n + cfg.ChunkSize - 1) / cfg.ChunkSize
			del := workload.DeleteOptions{
				Count:       int(float64(nChunks) * pct),
				RangeMillis: avgChunkSpan(p, cfg) / 10, // small vs chunk span (§4.4)
				Seed:        cfg.Seed + int64(pi),
			}
			b, err := build(cfg, p, 0.1, del, dir)
			if err != nil {
				cleanup()
				return nil, err
			}
			m, err := measure(cfg, b, p.Name, m4.Query{Tqs: b.tqs, Tqe: b.tqe, W: cfg.W})
			b.close()
			cleanup()
			if err != nil {
				return nil, err
			}
			m.Param, m.X = "deletePct", pct*100
			out = append(out, m)
		}
	}
	return out, nil
}

// Fig14RangeMultipliers is the delete-range sweep of §4.5, in units of
// the average chunk time span.
var Fig14RangeMultipliers = []float64{0.5, 1, 2, 4, 8}

// RunFig14 fixes the number of deletes and varies the delete time range
// (Figure 14): M4-UDF decreases as whole chunks die; M4-LSM stays small.
func RunFig14(cfg Config) ([]Measurement, error) {
	cfg = cfg.withDefaults()
	var out []Measurement
	for di, p := range cfg.Datasets {
		for mi, mult := range Fig14RangeMultipliers {
			dir, cleanup, err := tempDir(cfg, fmt.Sprintf("fig14-%d-%d", di, mi))
			if err != nil {
				return nil, err
			}
			n := int(float64(p.Points) * cfg.Scale)
			if n < 10 {
				n = 10
			}
			nChunks := (n + cfg.ChunkSize - 1) / cfg.ChunkSize
			del := workload.DeleteOptions{
				Count:       nChunks / 10, // fixed 10% of chunks
				RangeMillis: int64(float64(avgChunkSpan(p, cfg)) * mult),
				Seed:        cfg.Seed,
			}
			if del.Count < 1 {
				del.Count = 1
			}
			b, err := build(cfg, p, 0.1, del, dir)
			if err != nil {
				cleanup()
				return nil, err
			}
			m, err := measure(cfg, b, p.Name, m4.Query{Tqs: b.tqs, Tqe: b.tqe, W: cfg.W})
			b.close()
			cleanup()
			if err != nil {
				return nil, err
			}
			m.Param, m.X = "deleteRangeMult", mult
			out = append(out, m)
		}
	}
	return out, nil
}

// avgChunkSpan estimates the time covered by one chunk of the preset.
func avgChunkSpan(p workload.Preset, cfg Config) int64 {
	// Expected interval = base interval * (1 + gapProb * gapMax/2).
	exp := float64(p.IntervalMs) * (1 + p.GapProb*float64(p.GapMaxIntervals)/2)
	return int64(exp * float64(cfg.ChunkSize))
}
