package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "endpoint", "/query").Add(3)
	r.Counter("reqs_total", "endpoint", "/render").Inc()
	r.Gauge("memtable_points").Set(42)
	r.GaugeFunc("wal_bytes", func() float64 { return 1024 })
	r.CounterFunc("cache_hits_total", func() float64 { return 7 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		`reqs_total{endpoint="/query"} 3`,
		`reqs_total{endpoint="/render"} 1`,
		"# TYPE memtable_points gauge",
		"memtable_points 42",
		"wal_bytes 1024",
		"# TYPE cache_hits_total counter",
		"cache_hits_total 7",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q in:\n%s", want, got)
		}
	}
	// The TYPE line for a name must appear exactly once even with several
	// label sets.
	if n := strings.Count(got, "# TYPE reqs_total counter"); n != 1 {
		t.Errorf("TYPE line appears %d times", n)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("query_seconds", "op", "lsm")
	h.Observe(0.0001) // bucket le=200µs
	h.Observe(0.01)   // bucket le=12.8ms
	h.Observe(100)    // overflow, +Inf only

	var sb strings.Builder
	r.WritePrometheus(&sb)
	got := sb.String()
	for _, want := range []string{
		"# TYPE query_seconds histogram",
		`query_seconds_bucket{op="lsm",le="0.0002"} 1`,
		`query_seconds_bucket{op="lsm",le="0.0128"} 2`,
		`query_seconds_bucket{op="lsm",le="+Inf"} 3`,
		`query_seconds_count{op="lsm"} 3`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q in:\n%s", want, got)
		}
	}
	if h.Count() != 3 {
		t.Errorf("Count = %d", h.Count())
	}
	snap := r.Snapshot()
	hv, ok := snap[`query_seconds{op="lsm"}`].(map[string]interface{})
	if !ok {
		t.Fatalf("snapshot missing histogram: %v", snap)
	}
	if hv["count"].(int64) != 3 {
		t.Errorf("snapshot count = %v", hv["count"])
	}
}

func TestRegistrySameInstrument(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Counter("c").Inc()
	if v := r.Counter("c").Value(); v != 2 {
		t.Errorf("counter identity broken: %d", v)
	}
	// Same name, different labels: distinct series.
	r.Counter("c", "k", "v").Inc()
	if v := r.Counter("c").Value(); v != 2 {
		t.Errorf("labelled series leaked into unlabelled: %d", v)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("y").Set(2)
	r.Histogram("z").Observe(3)
	r.GaugeFunc("g", func() float64 { return 0 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if len(r.Snapshot()) != 0 {
		t.Error("nil registry snapshot not empty")
	}

	var tr *Trace
	tr.Phase("p", time.Second)
	tr.Task(0, "FP", time.Second)
	tr.SetCounter("c", 1)
	tr.Warn("w")
	if tr.Finish() != nil || tr.ID() != "" {
		t.Error("nil trace not inert")
	}

	var sl *SlowLog
	sl.Record(SlowEntry{ElapsedNs: 1})
	if sl.Entries() != nil {
		t.Error("nil slowlog not inert")
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(0.001)
				r.Gauge("g").Add(1)
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("c").Value(); v != 8000 {
		t.Errorf("counter = %d, want 8000", v)
	}
	if n := r.Histogram("h").Count(); n != 8000 {
		t.Errorf("histogram count = %d, want 8000", n)
	}
}

func TestTrace(t *testing.T) {
	ctx, tr := WithTrace(context.Background())
	if TraceOf(ctx) != tr {
		t.Fatal("TraceOf lost the trace")
	}
	if TraceOf(context.Background()) != nil {
		t.Fatal("TraceOf invented a trace")
	}
	tr.Phase("plan", 5*time.Microsecond)
	var wg sync.WaitGroup
	for span := 0; span < 4; span++ {
		wg.Add(1)
		go func(span int) {
			defer wg.Done()
			for _, g := range []string{"FP", "LP", "BP", "TP"} {
				tr.Task(span, g, time.Duration(span+1)*time.Microsecond)
			}
		}(span)
	}
	wg.Wait()
	tr.Warn("degraded")
	tr.SetCounter("chunksLoaded", 9)

	snap := tr.Finish()
	if snap.ID == "" || snap.ElapsedNs <= 0 {
		t.Errorf("snapshot header: %+v", snap)
	}
	if len(snap.Tasks) != 16 {
		t.Fatalf("tasks = %d", len(snap.Tasks))
	}
	var sum int64
	for i, task := range snap.Tasks {
		sum += task.Ns
		if i > 0 {
			prev := snap.Tasks[i-1]
			if task.Span < prev.Span || (task.Span == prev.Span && task.G < prev.G) {
				t.Errorf("tasks unsorted at %d: %+v after %+v", i, task, prev)
			}
		}
	}
	if sum != snap.TaskTotalNs {
		t.Errorf("TaskTotalNs = %d, tasks sum to %d", snap.TaskTotalNs, sum)
	}
	if snap.Counters["chunksLoaded"] != 9 || len(snap.Warnings) != 1 {
		t.Errorf("counters/warnings: %+v", snap)
	}
}

func TestSlowLogRing(t *testing.T) {
	sl := NewSlowLog(10*time.Millisecond, 3)
	sl.Record(SlowEntry{Query: "fast", ElapsedNs: int64(time.Millisecond)}) // below threshold
	for i := 0; i < 5; i++ {
		sl.Record(SlowEntry{Query: string(rune('a' + i)), ElapsedNs: int64(20 * time.Millisecond)})
	}
	got := sl.Entries()
	if len(got) != 3 {
		t.Fatalf("entries = %d", len(got))
	}
	// Newest first: e, d, c survive (a, b overwritten).
	for i, want := range []string{"e", "d", "c"} {
		if got[i].Query != want {
			t.Errorf("entry %d = %q, want %q", i, got[i].Query, want)
		}
	}
}

func TestSlowLogPartialFill(t *testing.T) {
	sl := NewSlowLog(0, 8)
	sl.Record(SlowEntry{Query: "one"})
	sl.Record(SlowEntry{Query: "two"})
	got := sl.Entries()
	if len(got) != 2 || got[0].Query != "two" || got[1].Query != "one" {
		t.Errorf("entries = %+v", got)
	}
}
