package stepreg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperChunk reconstructs the 1000-point chunk of Examples 3.8–3.10: 242
// points at a 9s cadence, a transmission gap (two large deltas), then the
// remaining points resuming the 9s cadence so that the last point lands on
// t=1639979452000.
func paperChunk() []int64 {
	ts := make([]int64, 0, 1000)
	t := int64(1639966606000)
	for i := 1; i <= 242; i++ {
		ts = append(ts, t)
		t += 9000
	}
	// t242 = 1639968775000. Gap: t243, then t244 = 1639972648000 so that
	// resuming at 9s cadence puts t1000 at 1639979452000.
	ts = append(ts, 1639970675000)
	t = 1639972648000
	for i := 244; i <= 1000; i++ {
		ts = append(ts, t)
		t += 9000
	}
	return ts
}

func TestPaperExampleSlope(t *testing.T) {
	ix := Build(paperChunk())
	if got, want := ix.Slope(), 1.0/9000; got != want {
		t.Errorf("Slope = %v, want %v (Example 3.9)", got, want)
	}
}

func TestPaperExampleSplits(t *testing.T) {
	ix := Build(paperChunk())
	want := []int64{1639966606000, 1639968775000, 1639972630000, 1639979452000}
	got := ix.Splits()
	if len(got) != len(want) {
		t.Fatalf("splits = %v, want %v (Example 3.8)", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("split[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestPaperExampleBoundaries(t *testing.T) {
	// Proposition 3.7: f(FP.t) = 1 and f(LP.t) = |C|.
	ts := paperChunk()
	ix := Build(ts)
	if got := ix.Predict(ts[0]); math.Abs(got-1) > 1e-6 {
		t.Errorf("f(first) = %v, want 1", got)
	}
	if got := ix.Predict(ts[len(ts)-1]); math.Abs(got-1000) > 1e-6 {
		t.Errorf("f(last) = %v, want 1000", got)
	}
	// The level segment sits at position 242 (Example 3.8).
	if got := ix.Predict(1639969000000); math.Abs(got-242) > 1e-6 {
		t.Errorf("f(level) = %v, want 242", got)
	}
}

func TestPaperExampleSegments(t *testing.T) {
	ix := Build(paperChunk())
	segs := ix.Segments()
	if len(segs) != 3 {
		t.Fatalf("got %d segments, want 3 (tilt, level, tilt)", len(segs))
	}
	if !segs[0].Tilt || segs[1].Tilt || !segs[2].Tilt {
		t.Errorf("segment shapes = %v %v %v, want tilt/level/tilt",
			segs[0].Tilt, segs[1].Tilt, segs[2].Tilt)
	}
	if segs[1].Intercept != 242 {
		t.Errorf("level intercept = %v, want 242", segs[1].Intercept)
	}
	for _, s := range segs {
		if s.String() == "" {
			t.Error("empty segment description")
		}
	}
}

func TestPaperExampleExactFit(t *testing.T) {
	ix := Build(paperChunk())
	if ix.MaxErr() > 1 {
		t.Errorf("MaxErr = %d; the step fit should be near exact on step data", ix.MaxErr())
	}
}

func checkAgainstPlain(t *testing.T, ts []int64, probes []int64) {
	t.Helper()
	ix := Build(ts)
	px := NewPlain(ts)
	for _, q := range probes {
		if got, want := ix.Exists(q), px.Exists(q); got != want {
			t.Fatalf("Exists(%d) = %v, want %v (n=%d)", q, got, want, len(ts))
		}
		gi, gok := ix.FirstAfter(q)
		wi, wok := px.FirstAfter(q)
		if gok != wok || (gok && gi != wi) {
			t.Fatalf("FirstAfter(%d) = %d,%v, want %d,%v", q, gi, gok, wi, wok)
		}
		gi, gok = ix.LastBefore(q)
		wi, wok = px.LastBefore(q)
		if gok != wok || (gok && gi != wi) {
			t.Fatalf("LastBefore(%d) = %d,%v, want %d,%v", q, gi, gok, wi, wok)
		}
	}
}

func TestProbesTinyChunks(t *testing.T) {
	checkAgainstPlain(t, nil, []int64{0, 5})
	checkAgainstPlain(t, []int64{100}, []int64{99, 100, 101})
	checkAgainstPlain(t, []int64{100, 200}, []int64{99, 100, 150, 200, 201})
}

func TestProbesRegular(t *testing.T) {
	ts := make([]int64, 500)
	for i := range ts {
		ts[i] = 1000 + int64(i)*50
	}
	var probes []int64
	for q := int64(900); q < 26200; q += 7 {
		probes = append(probes, q)
	}
	checkAgainstPlain(t, ts, probes)
}

func TestProbesPaperChunk(t *testing.T) {
	ts := paperChunk()
	probes := make([]int64, 0, 4000)
	for _, q := range ts {
		probes = append(probes, q-1, q, q+1)
	}
	probes = append(probes, 1639970675000-9000, 1639972648000+4500)
	checkAgainstPlain(t, ts, probes)
}

func TestProbesRandomProperty(t *testing.T) {
	f := func(rawDeltas []uint16, queries []int64, seed int64) bool {
		if len(rawDeltas) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		ts := make([]int64, 0, len(rawDeltas))
		cur := int64(rng.Intn(1 << 20))
		for _, d := range rawDeltas {
			cur += int64(d%5000) + 1
			ts = append(ts, cur)
		}
		ix := Build(ts)
		px := NewPlain(ts)
		for _, q := range queries {
			q = ts[0] + q%(ts[len(ts)-1]-ts[0]+100)
			if ix.Exists(q) != px.Exists(q) {
				return false
			}
			gi, gok := ix.FirstAfter(q)
			wi, wok := px.FirstAfter(q)
			if gok != wok || (gok && gi != wi) {
				return false
			}
			gi, gok = ix.LastBefore(q)
			wi, wok = px.LastBefore(q)
			if gok != wok || (gok && gi != wi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProbesAdversarialSteps(t *testing.T) {
	// Alternating bursts and long gaps; many changing points.
	rng := rand.New(rand.NewSource(42))
	ts := make([]int64, 0, 2000)
	cur := int64(0)
	for len(ts) < 2000 {
		run := 20 + rng.Intn(80)
		for i := 0; i < run && len(ts) < 2000; i++ {
			cur += 100
			ts = append(ts, cur)
		}
		cur += int64(1+rng.Intn(50)) * 100000
	}
	probes := make([]int64, 0, 3000)
	for i := 0; i < 3000; i++ {
		probes = append(probes, int64(rng.Intn(int(cur+1000))))
	}
	checkAgainstPlain(t, ts, probes)
}

func TestProbesDuplicateDeltasMedianOne(t *testing.T) {
	// Deltas of exactly 1ms: slope 1000 points/sec. Also exercises the
	// med<=0 guard indirectly via tiny deltas.
	ts := make([]int64, 64)
	for i := range ts {
		ts[i] = int64(i)
	}
	checkAgainstPlain(t, ts, []int64{-1, 0, 31, 63, 64, 100})
}

func TestFirstAfterLastBeforeSemantics(t *testing.T) {
	ts := []int64{10, 20, 30}
	ix := Build(ts)
	// Strictly after/before, per Definition 3.5.
	if pos, ok := ix.FirstAfter(20); !ok || pos != 2 {
		t.Errorf("FirstAfter(20) = %d,%v, want 2,true", pos, ok)
	}
	if pos, ok := ix.LastBefore(20); !ok || pos != 0 {
		t.Errorf("LastBefore(20) = %d,%v, want 0,true", pos, ok)
	}
	if _, ok := ix.FirstAfter(30); ok {
		t.Error("FirstAfter(last) must report none")
	}
	if _, ok := ix.LastBefore(10); ok {
		t.Error("LastBefore(first) must report none")
	}
	if pos, ok := ix.FirstAfter(5); !ok || pos != 0 {
		t.Errorf("FirstAfter(5) = %d,%v", pos, ok)
	}
	if pos, ok := ix.LastBefore(35); !ok || pos != 2 {
		t.Errorf("LastBefore(35) = %d,%v", pos, ok)
	}
}

func TestLenAndStats(t *testing.T) {
	ts := paperChunk()
	ix := Build(ts)
	if ix.Len() != 1000 {
		t.Errorf("Len = %d", ix.Len())
	}
	if ix.MaxErr() < 0 {
		t.Errorf("MaxErr = %d", ix.MaxErr())
	}
}

func BenchmarkStepRegressionProbe(b *testing.B) {
	ts := paperChunk()
	ix := Build(ts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Exists(ts[i%len(ts)])
	}
}

func BenchmarkPlainProbe(b *testing.B) {
	ts := paperChunk()
	px := NewPlain(ts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		px.Exists(ts[i%len(ts)])
	}
}

func BenchmarkBuild(b *testing.B) {
	ts := paperChunk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(ts)
	}
}
