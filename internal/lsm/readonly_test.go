package lsm

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"

	"m4lsm/internal/faultfs"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/m4udf"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// TestENOSPCFlushEntersReadOnly drives the disk-full degradation end to
// end: an injected ENOSPC during flush flips the engine read-only, writes
// get the typed retryable error while queries keep answering correctly,
// the engine recovers automatically once space returns, and a reopen over
// the crash leftovers serves the full dataset (M4-LSM ≡ M4-UDF).
func TestENOSPCFlushEntersReadOnly(t *testing.T) {
	dir := t.TempDir()
	var diskFull atomic.Bool
	hook := func(site string) error {
		if !diskFull.Load() {
			return nil
		}
		if strings.HasPrefix(site, "flush.chunk:") || site == "probe.space" {
			return fmt.Errorf("injected: %w", syscall.ENOSPC)
		}
		return nil
	}
	e, err := Open(Options{Dir: dir, FlushThreshold: 16, SyncWAL: true, StepHook: hook, SpaceProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	var want series.Series
	write := func(from, n int64) {
		t.Helper()
		for i := from; i < from+n; i++ {
			p := series.Point{T: i, V: float64(i % 13)}
			want = append(want, p)
			if err := e.Write("s", p); err != nil {
				t.Fatalf("write t=%d: %v", i, err)
			}
		}
	}
	write(0, 40) // a couple of clean flushes plus buffered leftovers

	// The disk "fills": the next flush must fail with the typed error and
	// flip the engine read-only.
	diskFull.Store(true)
	write(40, 7) // stays below the flush threshold, buffered + WAL only
	err = e.Flush()
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("flush on full disk: got %v, want ErrReadOnly", err)
	}
	if ro, reason := e.ReadOnly(); !ro || reason == "" {
		t.Fatalf("engine not read-only after ENOSPC (ro=%v reason=%q)", ro, reason)
	}
	if !e.Info().ReadOnly {
		t.Fatal("Info does not surface read-only mode")
	}
	if err := e.Write("s", series.Point{T: 1000, V: 1}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write while degraded: got %v, want ErrReadOnly", err)
	}
	if err := e.Delete("s", 0, 1); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("delete while degraded: got %v, want ErrReadOnly", err)
	}
	if err := e.Compact(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("compact while degraded: got %v, want ErrReadOnly", err)
	}

	// Queries must keep serving the complete dataset from chunks + memtable.
	checkQuery(t, e, want, "degraded")

	// Space returns: the next write probes, recovers and succeeds.
	diskFull.Store(false)
	p := series.Point{T: 48, V: 5}
	want = append(want, p)
	if err := e.Write("s", p); err != nil {
		t.Fatalf("write after space returned: %v", err)
	}
	if ro, _ := e.ReadOnly(); ro {
		t.Fatal("engine still read-only after successful probe")
	}
	if err := e.Flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	checkQuery(t, e, want, "recovered")

	// Reopen over the crash leftovers (the aborted flush left a partial
	// chunk file): recovery must quarantine it and replay the WAL.
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	e2, err := Open(Options{Dir: dir, FlushThreshold: 16, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	checkQuery(t, e2, want, "reopened")
}

// checkQuery asserts both operators agree with the oracle reduction of
// `want` over the full range.
func checkQuery(t *testing.T, e *Engine, want series.Series, phase string) {
	t.Helper()
	sorted := series.SortDedup(append(series.Series(nil), want...))
	q := m4.Query{Tqs: 0, Tqe: sorted[len(sorted)-1].T + 1, W: 7}
	ref, err := m4.ComputeSeries(q, sorted)
	if err != nil {
		t.Fatalf("%s: oracle: %v", phase, err)
	}
	snap, err := e.Snapshot("s", q.Range())
	if err != nil {
		t.Fatalf("%s: snapshot: %v", phase, err)
	}
	lsmAggs, err := m4lsm.Compute(snap, q)
	if err != nil {
		t.Fatalf("%s: m4lsm: %v", phase, err)
	}
	snap, err = e.Snapshot("s", q.Range())
	if err != nil {
		t.Fatalf("%s: snapshot: %v", phase, err)
	}
	udfAggs, err := m4udf.Compute(snap, q)
	if err != nil {
		t.Fatalf("%s: m4udf: %v", phase, err)
	}
	for i := range ref {
		if !m4.Equivalent(lsmAggs[i], ref[i]) {
			t.Fatalf("%s: span %d: m4lsm %v != oracle %v", phase, i, lsmAggs[i], ref[i])
		}
		if !m4.Equivalent(udfAggs[i], ref[i]) {
			t.Fatalf("%s: span %d: m4udf %v != oracle %v", phase, i, udfAggs[i], ref[i])
		}
	}
}

// TestENOSPCWALAppendEntersReadOnly covers the other write path: ENOSPC
// surfacing from the WAL append itself.
func TestENOSPCWALAppendEntersReadOnly(t *testing.T) {
	dir := t.TempDir()
	var diskFull atomic.Bool
	hook := func(site string) error {
		if diskFull.Load() && (site == "wal.append" || site == "probe.space") {
			return fmt.Errorf("injected: %w", syscall.ENOSPC)
		}
		return nil
	}
	e, err := Open(Options{Dir: dir, StepHook: hook, SpaceProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Write("s", pts(1, 1)...); err != nil {
		t.Fatal(err)
	}
	diskFull.Store(true)
	// The step error is returned verbatim (it is not a WAL write), but the
	// write is rejected; a real WAL ENOSPC comes through classifyWrite.
	// Exercise classify directly through Delete's mods path instead.
	if err := e.Write("s", pts(2, 2)...); err == nil {
		t.Fatal("write succeeded on full disk")
	}
	diskFull.Store(false)
	if err := e.Write("s", pts(3, 3)...); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

// TestReadRetryRecoversTransientFault: one transient read fault must be
// absorbed by the retry layer — clean result, no warnings, retry counted.
func TestReadRetryRecoversTransientFault(t *testing.T) {
	dir := t.TempDir()
	want := buildFaultStore(t, dir)

	var failOnce atomic.Int64
	failOnce.Store(1)
	e, err := Open(Options{
		Dir:            dir,
		RetryBaseDelay: 1, // nanosecond-scale: no real sleeping in tests
		WrapSource: func(src storage.ChunkSource) storage.ChunkSource {
			return sourceFunc{
				read: func(m storage.ChunkMeta) (series.Series, error) {
					if failOnce.Add(-1) == 0 {
						return nil, fmt.Errorf("%w: transient blip", faultfs.ErrInjected)
					}
					return src.ReadChunk(m)
				},
				times: func(m storage.ChunkMeta) ([]int64, error) { return src.ReadTimes(m) },
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	full := series.TimeRange{Start: 0, End: 1 << 20}
	snap, err := e.Snapshot("s", full)
	if err != nil {
		t.Fatal(err)
	}
	got := materialize(t, snap, full)
	if len(got) != len(want) {
		t.Fatalf("transient fault lost data despite retry: got %d points, want %d", len(got), len(want))
	}
	if snap.Warnings.Len() != 0 {
		t.Fatalf("retried read still produced warnings: %v", snap.Warnings.List())
	}
	info := e.Info()
	if info.ReadRetries != 1 {
		t.Fatalf("ReadRetries = %d, want 1", info.ReadRetries)
	}
	if info.ReadRetryExhausted != 0 {
		t.Fatalf("ReadRetryExhausted = %d, want 0", info.ReadRetryExhausted)
	}
}

// TestReadRetryExhaustion: a persistently failing read must exhaust its
// attempts, surface through the usual degradation path, and count as
// exhausted.
func TestReadRetryExhaustion(t *testing.T) {
	dir := t.TempDir()
	buildFaultStore(t, dir)

	e, err := Open(Options{
		Dir:            dir,
		ReadRetries:    2,
		RetryBaseDelay: 1,
		WrapSource: func(src storage.ChunkSource) storage.ChunkSource {
			return sourceFunc{
				read: func(m storage.ChunkMeta) (series.Series, error) {
					return nil, fmt.Errorf("%w: hard down", faultfs.ErrInjected)
				},
				times: func(m storage.ChunkMeta) ([]int64, error) {
					return nil, fmt.Errorf("%w: hard down", faultfs.ErrInjected)
				},
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	full := series.TimeRange{Start: 0, End: 1 << 20}
	snap, err := e.Snapshot("s", full)
	if err != nil {
		t.Fatal(err)
	}
	q := m4.Query{Tqs: 0, Tqe: 120, W: 6}
	if _, err := m4udf.Compute(snap, q); err != nil {
		t.Fatalf("lenient query must degrade, not fail: %v", err)
	}
	if snap.Warnings.Len() == 0 {
		t.Fatal("no warnings despite exhausted retries")
	}
	info := e.Info()
	if info.ReadRetryExhausted == 0 {
		t.Fatal("no exhaustion recorded")
	}
	if info.ReadRetries != 2*info.ReadRetryExhausted {
		t.Fatalf("ReadRetries = %d, want 2 per exhausted read (%d)", info.ReadRetries, info.ReadRetryExhausted)
	}
	// Transient faults must never quarantine, retried or not.
	if info.QuarantinedChunks != 0 {
		t.Fatalf("transient faults quarantined %d chunks", info.QuarantinedChunks)
	}
}
