// Monitoring: a live-ingestion scenario. A simulated sensor fleet writes
// out-of-order readings continuously while a "dashboard" loop runs M4 and
// GroupBy aggregate queries against the same engine — demonstrating that
// queries see unflushed memtable data (it appears to the snapshot as a
// high-version in-memory chunk) and that the merge-free operator keeps
// latency flat as history accumulates.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"m4lsm/internal/groupby"
	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/series"
	"m4lsm/internal/viz"
)

const (
	sensors   = 4
	pointsPer = 30_000 // per sensor per round
	rounds    = 5
)

func main() {
	dir, err := os.MkdirTemp("", "m4lsm-monitoring-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	engine, err := lsm.Open(lsm.Options{Dir: dir, FlushThreshold: 1000})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()

	rng := rand.New(rand.NewSource(1))
	base := int64(1_700_000_000_000)
	cursors := make([]int64, sensors)
	values := make([]float64, sensors)
	for i := range cursors {
		cursors[i] = base
		values[i] = 20 + float64(i)*5
	}

	ingest := func(sensor int, n int) {
		batch := make([]series.Point, 0, n)
		for j := 0; j < n; j++ {
			cursors[sensor] += 1000
			values[sensor] += rng.NormFloat64() * 0.5
			batch = append(batch, series.Point{T: cursors[sensor], V: values[sensor]})
		}
		// A slice of every batch arrives late (out of order) to land in
		// the unsequence space.
		cut := len(batch) - len(batch)/10
		id := sensorID(sensor)
		if err := engine.Write(id, batch[cut:]...); err != nil {
			log.Fatal(err)
		}
		if err := engine.Write(id, batch[:cut]...); err != nil {
			log.Fatal(err)
		}
	}

	for round := 1; round <= rounds; round++ {
		for s := 0; s < sensors; s++ {
			ingest(s, pointsPer)
		}
		fmt.Printf("== round %d: %d points per sensor ingested ==\n", round, round*pointsPer)
		info := engine.Info()
		fmt.Printf("storage: %d chunks, %d files (%d unsequence), %d memtable points\n",
			info.Chunks, info.Files, info.UnseqFiles, info.MemtablePoints)

		for s := 0; s < sensors; s++ {
			id := sensorID(s)
			q := m4.Query{Tqs: base + 1, Tqe: cursors[s] + 1, W: 60}
			snap, err := engine.Snapshot(id, q.Range())
			if err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			aggs, err := m4lsm.Compute(snap, q)
			if err != nil {
				log.Fatal(err)
			}
			m4Latency := time.Since(start)

			snap2, err := engine.Snapshot(id, q.Range())
			if err != nil {
				log.Fatal(err)
			}
			rows, err := groupby.Compute(snap2, m4.Query{Tqs: q.Tqs, Tqe: q.Tqe, W: 1},
				[]groupby.Func{groupby.Count, groupby.Avg, groupby.Min, groupby.Max})
			if err != nil {
				log.Fatal(err)
			}
			if len(rows) != 1 {
				log.Fatalf("sensor %s: no data", id)
			}
			v := rows[0].Values
			fmt.Printf("%s: count=%.0f avg=%.2f min=%.2f max=%.2f  m4(%dpx)=%v (%d/%d chunks pruned)\n",
				id, v[0], v[1], v[2], v[3], q.W, m4Latency.Round(time.Microsecond),
				snap.Stats.ChunksPruned, len(snap.Chunks))
			if round == rounds && s == 0 {
				reduced := m4.Points(aggs)
				vp := viz.ViewportFor(reduced, q.Tqs, q.Tqe)
				fmt.Print(viz.Rasterize(reduced, vp, 60, 10).ASCII())
			}
		}
	}

	// The freshest (unflushed) points must be visible: write a small
	// batch that stays in the memtable and check the M4 last point of
	// the final span equals the last written value.
	ingest(0, 3)
	id := sensorID(0)
	q := m4.Query{Tqs: base + 1, Tqe: cursors[0] + 1, W: 10}
	snap, _ := engine.Snapshot(id, q.Range())
	aggs, err := m4lsm.Compute(snap, q)
	if err != nil {
		log.Fatal(err)
	}
	last := aggs[len(aggs)-1]
	if last.Empty || last.Last.T != cursors[0] {
		log.Fatalf("freshest point missing: %v (want t=%d)", last, cursors[0])
	}
	fmt.Printf("\nfreshest unflushed point visible to queries: t=%d v=%.2f\n",
		last.Last.T, last.Last.V)
}

func sensorID(i int) string { return fmt.Sprintf("root.plant.sensor%02d", i) }
