package lsm

import (
	"runtime"
	"sync"
	"sync/atomic"

	"m4lsm/internal/series"
	"m4lsm/internal/storage"
)

// shard is one lock stripe of the engine. Series are routed to shards by
// shardIndex, and each shard owns the memtables, chunk registry and
// sequence-space watermark of its series, guarded by its own RWMutex. Global
// resources — the WAL file, the mods sidecar, the chunk-file list and the
// version counter — stay shared and are guarded separately (see the Engine
// field comments for the lock order).
type shard struct {
	mu  sync.RWMutex
	ix  int                      // this shard's index, for WAL checkpoints
	mem map[string]series.Series // per-series unsorted write buffer

	// memPts mirrors the buffered point count. It is only mutated under
	// mu, but is read atomically across shards by Info, so every access is
	// atomic.
	memPts atomic.Int64

	chunks map[string][]chunkEntry // per-series flushed chunks

	// Sequence/unsequence separation (reference [26]): per series, the
	// largest timestamp flushed to the sequence space so far. Points at
	// or before it are out-of-order and flush to unsequence files.
	maxSeqTime map[string]int64
}

func newShard() *shard {
	return &shard{
		mem:        make(map[string]series.Series),
		chunks:     make(map[string][]chunkEntry),
		maxSeqTime: make(map[string]int64),
	}
}

// applyDeleteToMem removes covered points from the write buffer, so points
// written before the delete die while later writes survive. Caller holds
// sh.mu.
func (sh *shard) applyDeleteToMem(d storage.Delete) {
	buf := sh.mem[d.SeriesID]
	if len(buf) == 0 {
		return
	}
	kept := buf[:0]
	for _, p := range buf {
		if !d.Covers(p.T) {
			kept = append(kept, p)
		}
	}
	sh.memPts.Add(int64(len(kept) - len(buf)))
	sh.mem[d.SeriesID] = kept
}

// shardIndex routes a series id to its shard: FNV-1a over the id bytes,
// reduced mod n. The routing is a pure function of the id, so a directory
// written with one NumShards reopens correctly under another — recovery and
// file loading route by hash, never by the shard recorded on disk.
func shardIndex(seriesID string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(seriesID); i++ {
		h ^= uint64(seriesID[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

func (e *Engine) shardFor(seriesID string) (*shard, int) {
	i := shardIndex(seriesID, len(e.shards))
	return e.shards[i], i
}

// lockAll acquires every shard's write lock in index order, the only order
// in which more than one shard lock may be held (Close, Kill, Compact).
func (e *Engine) lockAll() {
	for _, sh := range e.shards {
		sh.mu.Lock()
	}
}

func (e *Engine) unlockAll() {
	for i := len(e.shards) - 1; i >= 0; i-- {
		e.shards[i].mu.Unlock()
	}
}

// shardParallelism bounds per-shard maintenance concurrency (Flush,
// Compact): at most one worker per shard, at most GOMAXPROCS overall, and
// strictly sequential when a StepHook is installed so fault-injection
// schedules stay deterministic.
func (e *Engine) shardParallelism() int {
	if e.opts.StepHook != nil {
		return 1
	}
	par := runtime.GOMAXPROCS(0)
	if par > len(e.shards) {
		par = len(e.shards)
	}
	if par < 1 {
		par = 1
	}
	return par
}

// runShardPool runs fn(i) for every i in [0,n) on up to par goroutines and
// returns the error of the lowest-indexed failure. par <= 1 degenerates to a
// sequential loop with no goroutines.
func runShardPool(par, n int, fn func(int) error) error {
	if n == 0 {
		return nil
	}
	if par <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if par > n {
		par = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
