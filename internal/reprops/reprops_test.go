package reprops

import (
	"math/rand"
	"testing"

	"m4lsm/internal/m4"
	"m4lsm/internal/series"
)

// randomSeries builds a sorted, strictly increasing-timestamp series of n
// points on ticks [0, n) with a seeded random walk.
func randomSeries(seed int64, n int) series.Series {
	rng := rand.New(rand.NewSource(seed))
	s := make(series.Series, n)
	v := 0.0
	for i := range s {
		v += rng.Float64()*2 - 1
		s[i] = series.Point{T: int64(i), V: v}
	}
	return s
}

// TestLTTBProperties checks the structural contract over many random
// series and widths: exactly min(w, n) points, strictly increasing
// timestamps, global first/last preserved, and every output point drawn
// from the input.
func TestLTTBProperties(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		n := 1 + rng.Intn(500)
		w := 1 + rng.Intn(80)
		s := randomSeries(seed, n)
		out := LTTB(s, w)

		want := w
		if n < w {
			want = n
		}
		if len(out) != want {
			t.Fatalf("seed %d: LTTB(n=%d, w=%d) returned %d points, want %d", seed, n, w, len(out), want)
		}
		byT := make(map[int64]float64, n)
		for _, p := range s {
			byT[p.T] = p.V
		}
		for i, p := range out {
			if i > 0 && out[i-1].T >= p.T {
				t.Fatalf("seed %d: non-increasing timestamps at %d: %d >= %d", seed, i, out[i-1].T, p.T)
			}
			if v, ok := byT[p.T]; !ok || v != p.V {
				t.Fatalf("seed %d: output point %v not in input", seed, p)
			}
		}
		if out[0] != s[0] {
			t.Fatalf("seed %d: first point %v, want %v", seed, out[0], s[0])
		}
		if out[len(out)-1] != s[n-1] {
			t.Fatalf("seed %d: last point %v, want %v", seed, out[len(out)-1], s[n-1])
		}
	}
}

func TestLTTBEdgeCases(t *testing.T) {
	s := randomSeries(7, 100)
	if got := LTTB(nil, 10); got != nil {
		t.Fatalf("LTTB(nil) = %v, want nil", got)
	}
	if got := LTTB(s, 0); got != nil {
		t.Fatalf("LTTB(w=0) = %v, want nil", got)
	}
	if got := LTTB(s, 1); len(got) != 1 || got[0] != s[0] {
		t.Fatalf("LTTB(w=1) = %v, want just the first point", got)
	}
	if got := LTTB(s, 2); len(got) != 2 || got[0] != s[0] || got[1] != s[99] {
		t.Fatalf("LTTB(w=2) = %v, want first+last", got)
	}
	// n <= w returns a copy, not an alias.
	got := LTTB(s, 200)
	if len(got) != len(s) {
		t.Fatalf("LTTB(w>n) kept %d points, want all %d", len(got), len(s))
	}
	got[0].V = 12345
	if s[0].V == 12345 {
		t.Fatal("LTTB(w>n) aliases its input")
	}
}

// TestLTTBDeterministic: identical input must give identical output —
// the differential harness depends on bit-for-bit reproducibility.
func TestLTTBDeterministic(t *testing.T) {
	s := randomSeries(3, 5000)
	a := LTTB(s, 97)
	b := LTTB(s, 97)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestMinMaxSubsetOfM4 checks MinMax ⊆ M4 on identical queries: bottom
// and top are two of M4's four per-span points, so every MinMax output
// point must appear in the M4 point set.
func TestMinMaxSubsetOfM4(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s := randomSeries(seed, 400)
		q := m4.Query{Tqs: 13, Tqe: 377, W: 23}
		aggs, err := m4.ComputeSeries(q, s)
		if err != nil {
			t.Fatal(err)
		}
		m4pts := make(map[series.Point]bool)
		for _, p := range m4.Points(aggs) {
			m4pts[p] = true
		}
		mm := MinMaxPoints(aggs)
		for _, p := range mm {
			if !m4pts[p] {
				t.Fatalf("seed %d: MinMax point %v not in M4 output", seed, p)
			}
		}
		for i := 1; i < len(mm); i++ {
			if mm[i-1].T >= mm[i].T {
				t.Fatalf("seed %d: MinMax output not strictly sorted at %d", seed, i)
			}
		}
		if len(mm) > 2*q.W {
			t.Fatalf("seed %d: MinMax kept %d points, budget %d", seed, len(mm), 2*q.W)
		}
	}
}

// TestMinMaxLTTBConvergesToLTTB: when ratio·w covers every tick in the
// range, each preselection span holds at most one point, so MinMax
// preselection keeps everything and MinMaxLTTB degenerates to exact LTTB.
func TestMinMaxLTTBConvergesToLTTB(t *testing.T) {
	const n = 256
	s := randomSeries(11, n)
	q := m4.Query{Tqs: 0, Tqe: n, W: 8}
	// ratio·w = 256 spans over 256 ticks: one tick per span.
	spec := Spec{Kind: KindMinMaxLTTB, Ratio: 32}
	got, err := Reduce(spec, q, s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Reduce(Spec{Kind: KindLTTB}, q, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("lengths differ: minmaxlttb %d vs lttb %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("point %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestMinMaxLTTBPointBudget: output never exceeds w points and the
// preselection bound 2·ratio·w holds on dense data.
func TestMinMaxLTTBPointBudget(t *testing.T) {
	s := randomSeries(5, 10000)
	q := m4.Query{Tqs: 0, Tqe: 10000, W: 50}
	for _, ratio := range []int{2, 4, 8} {
		out, err := Reduce(Spec{Kind: KindMinMaxLTTB, Ratio: ratio}, q, s)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != q.W {
			t.Fatalf("ratio %d: got %d points, want exactly w=%d on dense data", ratio, len(out), q.W)
		}
	}
}

func TestParseSpec(t *testing.T) {
	good := map[string]Spec{
		"m4":            {Kind: KindM4},
		"M4":            {Kind: KindM4},
		"minmax":        {Kind: KindMinMax},
		"lttb":          {Kind: KindLTTB},
		"LTTB":          {Kind: KindLTTB},
		"minmaxlttb":    {Kind: KindMinMaxLTTB},
		"minmaxlttb:2":  {Kind: KindMinMaxLTTB, Ratio: 2},
		"minmaxlttb:64": {Kind: KindMinMaxLTTB, Ratio: 64},
		"MinMaxLTTB:8":  {Kind: KindMinMaxLTTB, Ratio: 8},
	}
	for in, want := range good {
		got, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		if got != want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", in, got, want)
		}
	}
	bad := []string{"", "m5", "minmax:2", "lttb:4", "m4:1", "minmaxlttb:", "minmaxlttb:1", "minmaxlttb:65", "minmaxlttb:x", "minmaxlttb:-4", "minmaxlttb:4.5"}
	for _, in := range bad {
		if _, err := ParseSpec(in); err == nil {
			t.Fatalf("ParseSpec(%q) succeeded, want error", in)
		}
	}
}

func TestSpecString(t *testing.T) {
	cases := map[string]Spec{
		"m4":           {Kind: KindM4},
		"minmax":       {Kind: KindMinMax},
		"lttb":         {Kind: KindLTTB},
		"minmaxlttb":   {Kind: KindMinMaxLTTB},
		"minmaxlttb:8": {Kind: KindMinMaxLTTB, Ratio: 8},
	}
	for want, spec := range cases {
		if got := spec.String(); got != want {
			t.Fatalf("Spec%+v.String() = %q, want %q", spec, got, want)
		}
		// Round trip.
		back, err := ParseSpec(want)
		if err != nil || back != spec {
			t.Fatalf("round trip %q: got %+v, %v", want, back, err)
		}
	}
	if (Spec{}).EffectiveRatio() != DefaultRatio {
		t.Fatal("zero Spec must resolve to the default ratio")
	}
}

func TestReduceValidatesQuery(t *testing.T) {
	s := randomSeries(1, 10)
	for _, spec := range Specs() {
		if _, err := Reduce(spec, m4.Query{Tqs: 10, Tqe: 0, W: 4}, s); err == nil {
			t.Fatalf("%s: invalid query accepted", spec)
		}
		if _, err := Reduce(spec, m4.Query{Tqs: 0, Tqe: 10, W: 0}, s); err == nil {
			t.Fatalf("%s: w=0 accepted", spec)
		}
	}
}

func TestClip(t *testing.T) {
	s := randomSeries(2, 100)
	c := Clip(s, m4.Query{Tqs: 10, Tqe: 20, W: 1})
	if len(c) != 10 || c[0].T != 10 || c[len(c)-1].T != 19 {
		t.Fatalf("Clip half-open range wrong: len=%d first=%v last=%v", len(c), c[0], c[len(c)-1])
	}
	if got := Clip(s, m4.Query{Tqs: 200, Tqe: 300, W: 1}); len(got) != 0 {
		t.Fatalf("Clip outside range kept %d points", len(got))
	}
}
