// Out-of-order ingestion: build the adversarial LSM states of §4.3-§4.5
// (overlapping chunks, overwrites, range deletes), show that M4-LSM and
// the merge-everything baseline agree span by span, and compare what each
// operator had to read.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/m4udf"
	"m4lsm/internal/series"
	"m4lsm/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "m4lsm-ooo-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	engine, err := lsm.Open(lsm.Options{Dir: dir, FlushThreshold: 1000, DisableWAL: true})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()

	// 500k MF03-like points in 1000-point chunks (so chunks far outnumber
	// the pixel columns, the paper's regime), 30% of chunks overlapping.
	preset := workload.MF03()
	data := preset.Generate(500_000, 3)
	const id = "root.mf03"
	if err := workload.Load(engine, id, data, workload.LoadOptions{
		ChunkSize: 1000, OverlapFraction: 0.3, Seed: 3,
	}); err != nil {
		log.Fatal(err)
	}
	// Late corrections overwriting a patch of history, then range deletes.
	var corrections []series.Point
	for i := 40_000; i < 40_500; i++ {
		corrections = append(corrections, series.Point{T: data[i].T, V: data[i].V + 50})
	}
	if err := engine.Write(id, corrections...); err != nil {
		log.Fatal(err)
	}
	if err := engine.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := workload.ApplyDeletes(engine, id, data, workload.DeleteOptions{
		Count: 20, RangeMillis: 10_000, Seed: 9,
	}); err != nil {
		log.Fatal(err)
	}

	info := engine.Info()
	pct, err := workload.OverlapPercentage(engine, id, series.TimeRange{Start: 0, End: 1 << 62})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("storage: %d chunks in %d files, %d deletes, %.0f%% overlapping chunks\n",
		info.Chunks, info.Files, info.Deletes, pct*100)

	q := m4.Query{Tqs: data[0].T, Tqe: data[len(data)-1].T + 1, W: 50}

	snap, err := engine.Snapshot(id, q.Range())
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	udfAggs, err := m4udf.Compute(snap, q)
	if err != nil {
		log.Fatal(err)
	}
	udfTime := time.Since(start)
	udfStats := *snap.Stats

	snap, err = engine.Snapshot(id, q.Range())
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	lsmAggs, err := m4lsm.Compute(snap, q)
	if err != nil {
		log.Fatal(err)
	}
	lsmTime := time.Since(start)
	lsmStats := *snap.Stats

	for i := range lsmAggs {
		if !m4.Equivalent(lsmAggs[i], udfAggs[i]) {
			log.Fatalf("operators disagree on span %d: %v vs %v", i, lsmAggs[i], udfAggs[i])
		}
	}
	fmt.Printf("both operators agree on all %d spans\n\n", q.W)
	fmt.Printf("%-8s %12s %14s %14s %14s\n", "", "latency", "chunk loads", "partial loads", "points decoded")
	fmt.Printf("%-8s %12v %14d %14d %14d\n", "M4-UDF", udfTime.Round(time.Microsecond),
		udfStats.ChunksLoaded, udfStats.TimeBlocksLoaded, udfStats.PointsDecoded)
	fmt.Printf("%-8s %12v %14d %14d %14d\n", "M4-LSM", lsmTime.Round(time.Microsecond),
		lsmStats.ChunksLoaded, lsmStats.TimeBlocksLoaded, lsmStats.PointsDecoded)
	fmt.Printf("\nM4-LSM answered %d of %d chunks from metadata alone (%.0f%% pruned)\n",
		lsmStats.ChunksPruned, info.Chunks, 100*float64(lsmStats.ChunksPruned)/float64(info.Chunks))
}
