package encoding

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestZigZagRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, 1 << 40, -(1 << 40), math.MaxInt64, math.MinInt64} {
		if got := UnZigZag(ZigZag(v)); got != v {
			t.Errorf("UnZigZag(ZigZag(%d)) = %d", v, got)
		}
	}
}

func TestZigZagSmallCodes(t *testing.T) {
	// Small magnitudes must map to small codes for varint efficiency.
	want := map[int64]uint64{0: 0, -1: 1, 1: 2, -2: 3, 2: 4}
	for v, u := range want {
		if got := ZigZag(v); got != u {
			t.Errorf("ZigZag(%d) = %d, want %d", v, got, u)
		}
	}
}

func TestZigZagProperty(t *testing.T) {
	f := func(v int64) bool { return UnZigZag(ZigZag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarintRoundTrip(t *testing.T) {
	var buf []byte
	vals := []int64{0, 5, -5, 1 << 50, -(1 << 50)}
	for _, v := range vals {
		buf = AppendVarint(buf, v)
	}
	b := buf
	for _, want := range vals {
		var got int64
		var err error
		got, b, err = Varint(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Varint = %d, want %d", got, want)
		}
	}
	if len(b) != 0 {
		t.Errorf("leftover %d bytes", len(b))
	}
}

func TestVarintCorrupt(t *testing.T) {
	if _, _, err := Varint(nil); err == nil {
		t.Error("empty buffer must error")
	}
	// A lone continuation byte is invalid.
	if _, _, err := Uvarint([]byte{0x80}); err == nil {
		t.Error("truncated uvarint must error")
	}
}

func timesRoundTrip(t *testing.T, ts []int64) {
	t.Helper()
	enc := EncodeTimes(nil, ts)
	got, rest, err := DecodeTimes(enc)
	if err != nil {
		t.Fatalf("DecodeTimes: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("leftover %d bytes", len(rest))
	}
	if len(got) != len(ts) {
		t.Fatalf("len = %d, want %d", len(got), len(ts))
	}
	for i := range ts {
		if got[i] != ts[i] {
			t.Fatalf("ts[%d] = %d, want %d", i, got[i], ts[i])
		}
	}
}

func TestEncodeTimesBasic(t *testing.T) {
	timesRoundTrip(t, nil)
	timesRoundTrip(t, []int64{42})
	timesRoundTrip(t, []int64{42, 43})
	timesRoundTrip(t, []int64{0, 1000, 2000, 3000, 9000, 9001})
	timesRoundTrip(t, []int64{-100, -50, 0, 77})
}

func TestEncodeTimesRegularIsTiny(t *testing.T) {
	// 1000 perfectly regular timestamps: delta-of-delta is zero after the
	// first two, so the block must be far below 8 bytes/point.
	ts := make([]int64, 1000)
	for i := range ts {
		ts[i] = 1639966606000 + int64(i)*9000
	}
	enc := EncodeTimes(nil, ts)
	if len(enc) > 1100 {
		t.Errorf("regular block is %d bytes; want ~1 byte/point", len(enc))
	}
	timesRoundTrip(t, ts)
}

func TestEncodeTimesProperty(t *testing.T) {
	f := func(deltas []uint16, start int64) bool {
		ts := make([]int64, 0, len(deltas)+1)
		cur := start % (1 << 40)
		ts = append(ts, cur)
		for _, d := range deltas {
			cur += int64(d) + 1
			ts = append(ts, cur)
		}
		enc := EncodeTimes(nil, ts)
		got, rest, err := DecodeTimes(enc)
		if err != nil || len(rest) != 0 {
			return false
		}
		return reflect.DeepEqual(got, ts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTimesCorrupt(t *testing.T) {
	enc := EncodeTimes(nil, []int64{1, 2, 3, 4})
	for cut := 1; cut < len(enc); cut++ {
		if _, _, err := DecodeTimes(enc[:cut]); err == nil {
			t.Errorf("truncation at %d bytes decoded successfully", cut)
		}
	}
}

func valuesRoundTrip(t *testing.T, vs []float64) {
	t.Helper()
	enc := EncodeValues(nil, vs)
	got, rest, err := DecodeValues(enc)
	if err != nil {
		t.Fatalf("DecodeValues: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("leftover %d bytes", len(rest))
	}
	if len(got) != len(vs) {
		t.Fatalf("len = %d, want %d", len(got), len(vs))
	}
	for i := range vs {
		if math.Float64bits(got[i]) != math.Float64bits(vs[i]) {
			t.Fatalf("vs[%d] = %v, want %v", i, got[i], vs[i])
		}
	}
}

func TestEncodeValuesBasic(t *testing.T) {
	valuesRoundTrip(t, nil)
	valuesRoundTrip(t, []float64{3.14})
	valuesRoundTrip(t, []float64{1, 1, 1, 1})
	valuesRoundTrip(t, []float64{0, -0, 1.5, -1.5, math.MaxFloat64, math.SmallestNonzeroFloat64})
	valuesRoundTrip(t, []float64{math.Inf(1), math.Inf(-1), 0})
}

func TestEncodeValuesConstantIsTiny(t *testing.T) {
	vs := make([]float64, 1000)
	for i := range vs {
		vs[i] = 21.5
	}
	enc := EncodeValues(nil, vs)
	if len(enc) > 200 {
		t.Errorf("constant block is %d bytes; want ~1 bit/point", len(enc))
	}
	valuesRoundTrip(t, vs)
}

func TestEncodeValuesRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vs := make([]float64, 5000)
	cur := 100.0
	for i := range vs {
		cur += rng.NormFloat64()
		vs[i] = cur
	}
	valuesRoundTrip(t, vs)
}

func TestEncodeValuesProperty(t *testing.T) {
	f := func(bits []uint64) bool {
		vs := make([]float64, len(bits))
		for i, b := range bits {
			v := math.Float64frombits(b)
			if math.IsNaN(v) {
				v = 0 // NaN payloads are rejected upstream by Validate
			}
			vs[i] = v
		}
		enc := EncodeValues(nil, vs)
		got, rest, err := DecodeValues(enc)
		if err != nil || len(rest) != 0 || len(got) != len(vs) {
			return false
		}
		for i := range vs {
			if math.Float64bits(got[i]) != math.Float64bits(vs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeValuesCorrupt(t *testing.T) {
	enc := EncodeValues(nil, []float64{1.5, 2.5, 3.5, 2.5})
	for cut := 1; cut < len(enc); cut++ {
		got, rest, err := DecodeValues(enc[:cut])
		if err == nil && len(rest) == 0 && len(got) == 4 {
			t.Errorf("truncation at %d bytes decoded to a full block", cut)
		}
	}
}

func TestPlainRoundTrip(t *testing.T) {
	ts := []int64{-5, 0, 7, 1 << 60}
	vs := []float64{1.5, math.Inf(1), -0.0, 42}
	gotTS, rest, err := DecodeTimesPlain(EncodeTimesPlain(nil, ts))
	if err != nil || len(rest) != 0 || !reflect.DeepEqual(gotTS, ts) {
		t.Fatalf("times: %v %v %v", gotTS, rest, err)
	}
	gotVS, rest, err := DecodeValuesPlain(EncodeValuesPlain(nil, vs))
	if err != nil || len(rest) != 0 {
		t.Fatalf("values: %v %v", rest, err)
	}
	for i := range vs {
		if math.Float64bits(gotVS[i]) != math.Float64bits(vs[i]) {
			t.Fatalf("values[%d] = %v", i, gotVS[i])
		}
	}
}

func TestPlainCorrupt(t *testing.T) {
	enc := EncodeTimesPlain(nil, []int64{1, 2})
	if _, _, err := DecodeTimesPlain(enc[:len(enc)-1]); err == nil {
		t.Error("short plain timestamp block decoded")
	}
	encV := EncodeValuesPlain(nil, []float64{1, 2})
	if _, _, err := DecodeValuesPlain(encV[:len(encV)-1]); err == nil {
		t.Error("short plain value block decoded")
	}
}

func TestCodecDispatch(t *testing.T) {
	ts := []int64{10, 20, 35}
	vs := []float64{1, 2, 1}
	for _, c := range []Codec{CodecGorilla, CodecPlain} {
		if !c.Valid() {
			t.Fatalf("%v not valid", c)
		}
		gt, rest, err := c.DecodeTimesWith(c.EncodeTimesWith(nil, ts))
		if err != nil || len(rest) != 0 || !reflect.DeepEqual(gt, ts) {
			t.Fatalf("%v times: %v %v %v", c, gt, rest, err)
		}
		gv, rest, err := c.DecodeValuesWith(c.EncodeValuesWith(nil, vs))
		if err != nil || len(rest) != 0 || !reflect.DeepEqual(gv, vs) {
			t.Fatalf("%v values: %v %v %v", c, gv, rest, err)
		}
	}
	if Codec(9).Valid() {
		t.Error("unknown codec reported valid")
	}
	if CodecGorilla.String() != "gorilla" || CodecPlain.String() != "plain" || Codec(9).String() != "unknown" {
		t.Error("codec names wrong")
	}
}

func TestBitStreamRoundTrip(t *testing.T) {
	w := bitWriter{}
	w.writeBit(1)
	w.writeBits(0b1011, 4)
	w.writeBits(0xDEADBEEF, 32)
	w.writeBit(0)
	r := newBitReader(w.bytes())
	if b, _ := r.readBit(); b != 1 {
		t.Fatal("bit 0")
	}
	if v, _ := r.readBits(4); v != 0b1011 {
		t.Fatalf("bits = %b", v)
	}
	if v, _ := r.readBits(32); v != 0xDEADBEEF {
		t.Fatalf("word = %x", v)
	}
	if b, _ := r.readBit(); b != 0 {
		t.Fatal("trailing bit")
	}
}

func TestBitReaderExhaustion(t *testing.T) {
	r := newBitReader([]byte{0xFF})
	if _, err := r.readBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.readBit(); err == nil {
		t.Error("reading past end must error")
	}
}

func TestBitStreamProperty(t *testing.T) {
	f := func(fields []uint16) bool {
		w := bitWriter{}
		for _, v := range fields {
			w.writeBits(uint64(v), 16)
		}
		r := newBitReader(w.bytes())
		for _, v := range fields {
			got, err := r.readBits(16)
			if err != nil || got != uint64(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionRatioOnSensorLikeData(t *testing.T) {
	// Regular 9s cadence with occasional gaps and a slowly drifting value:
	// the Gorilla codec must beat plain encoding by a wide margin.
	rng := rand.New(rand.NewSource(3))
	n := 4096
	ts := make([]int64, n)
	vs := make([]float64, n)
	cur := int64(1639966606000)
	val := 20.0
	for i := 0; i < n; i++ {
		cur += 9000
		if rng.Intn(500) == 0 {
			cur += int64(rng.Intn(100)) * 9000
		}
		val += math.Round(rng.NormFloat64()*8) / 8 // quantized sensor steps
		ts[i] = cur
		vs[i] = val
	}
	gor := len(EncodeTimes(nil, ts)) + len(EncodeValues(nil, vs))
	plain := len(EncodeTimesPlain(nil, ts)) + len(EncodeValuesPlain(nil, vs))
	if gor*2 >= plain {
		t.Errorf("gorilla %dB vs plain %dB: expected >2x compression", gor, plain)
	}
	timesRoundTrip(t, ts)
	valuesRoundTrip(t, vs)
}
