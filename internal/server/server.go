// Package server exposes the database over HTTP: m4ql queries as JSON, a
// PNG line-chart renderer backed by the M4 operator (what a dashboard
// would call), and introspection endpoints. cmd/m4server wires it to a
// database directory.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"

	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/m4ql"
	"m4lsm/internal/viz"
)

// Handler serves the HTTP API for one engine.
type Handler struct {
	engine *lsm.Engine
	mux    *http.ServeMux
}

// New builds the HTTP handler.
func New(e *lsm.Engine) *Handler {
	h := &Handler{engine: e, mux: http.NewServeMux()}
	h.mux.HandleFunc("/", h.ui)
	h.mux.HandleFunc("/healthz", h.health)
	h.mux.HandleFunc("/series", h.series)
	h.mux.HandleFunc("/query", h.query)
	h.mux.HandleFunc("/render", h.render)
	return h
}

// ServeHTTP implements http.Handler. Handler panics are recovered: the
// connection answers 500 instead of taking the whole server down.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			log.Printf("m4server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			// Best effort: if the handler already wrote a status this
			// is a no-op on the status line.
			httpError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
		}
	}()
	h.mux.ServeHTTP(w, r)
}

// writeJSON encodes v as the response body. Encode failures after the
// header is out cannot reach the client; they are logged instead of
// silently dropped.
func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("m4server: write response: %v", err)
	}
}

func (h *Handler) health(w http.ResponseWriter, _ *http.Request) {
	info := h.engine.Info()
	status := "ok"
	if info.BadFiles > 0 || info.QuarantinedChunks > 0 {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":            status,
		"files":             info.Files,
		"chunks":            info.Chunks,
		"badFiles":          info.BadFiles,
		"quarantinedChunks": info.QuarantinedChunks,
	})
}

func (h *Handler) series(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, h.engine.SeriesIDs())
}

// query executes an m4ql statement. The statement comes from the "q" URL
// parameter (GET) or a JSON body {"query": "..."} (POST). The request
// context cancels the query when the client disconnects.
func (h *Handler) query(w http.ResponseWriter, r *http.Request) {
	var q string
	switch r.Method {
	case http.MethodGet:
		q = r.URL.Query().Get("q")
	case http.MethodPost:
		var body struct {
			Query string `json:"query"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		q = body.Query
	default:
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or POST"))
		return
	}
	if q == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing query"))
		return
	}
	res, err := m4ql.RunContext(r.Context(), h.engine, q)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The client is gone (or the server is shutting down);
			// nobody reads this body, but close out the exchange.
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// render draws a two-color PNG line chart of a series over a time range.
// Parameters: series, tqs, tqe, w (pixel columns = M4 spans), h (pixel
// rows, default 400). Unknown series answer 404. When unreadable chunks
// were skipped the image still renders and the response carries an
// X-M4-Partial header.
func (h *Handler) render(w http.ResponseWriter, r *http.Request) {
	params := r.URL.Query()
	seriesID := params.Get("series")
	if seriesID == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing series parameter"))
		return
	}
	tqs, err1 := strconv.ParseInt(params.Get("tqs"), 10, 64)
	tqe, err2 := strconv.ParseInt(params.Get("tqe"), 10, 64)
	width, err3 := strconv.Atoi(params.Get("w"))
	if err1 != nil || err2 != nil || err3 != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("tqs, tqe and w must be integers"))
		return
	}
	height := 400
	if hs := params.Get("h"); hs != "" {
		var err error
		if height, err = strconv.Atoi(hs); err != nil || height <= 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad h parameter"))
			return
		}
	}
	q := m4.Query{Tqs: tqs, Tqe: tqe, W: width}
	if err := q.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if !h.engine.HasSeries(seriesID) {
		httpError(w, http.StatusNotFound, fmt.Errorf("series %q not found", seriesID))
		return
	}
	snap, err := h.engine.Snapshot(seriesID, q.Range())
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	aggs, err := m4lsm.ComputeContext(r.Context(), snap, q, m4lsm.Options{})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	reduced := m4.Points(aggs)
	vp := viz.ViewportFor(reduced, tqs, tqe)
	canvas := viz.Rasterize(reduced, vp, width, height)
	if snap.Warnings.Len() > 0 {
		w.Header().Set("X-M4-Partial", strconv.Itoa(snap.Warnings.Len()))
	}
	w.Header().Set("Content-Type", "image/png")
	if err := canvas.WritePNG(w); err != nil {
		log.Printf("m4server: write png: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
