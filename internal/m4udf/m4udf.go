// Package m4udf is the baseline operator of Fig. 2(b): the original M4
// algorithm implemented the way a user-defined function runs inside the
// database. It reads the fully assembled time series from the merge reader
// — loading every chunk, ordering points by time and applying deletes —
// and streams the M4 representation over it. Chunk metadata is never
// consulted (§A.5.2).
package m4udf

import (
	"m4lsm/internal/m4"
	"m4lsm/internal/mergeread"
	"m4lsm/internal/storage"
)

// Compute runs the M4 representation query against a snapshot by merging
// all chunks online and scanning the merged series.
func Compute(snap *storage.Snapshot, q m4.Query) ([]m4.Aggregate, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	it, err := mergeread.NewIterator(snap, q.Range())
	if err != nil {
		return nil, err
	}
	return m4.ComputeStream(q, it.Next)
}
