// Package difftest is a differential correctness harness for the storage
// engine and both M4 operators: a seed-reproducible random workload runs
// against the real engine and against a naive in-memory oracle (a
// map[timestamp]value per series — latest write wins, deletes remove the
// range), then every M4 query shape is answered four ways — M4-LSM (which
// consults the rollup pyramid where cells are valid), M4-LSM with the
// pyramid disabled, M4-UDF, and the reference scan over the oracle's merged
// series — and the answers must agree span by span. A failing case prints
// its seed, so one integer reproduces it.
//
// The generator deliberately concentrates probability mass where the
// engine's invariants live: out-of-order writes, same-timestamp overwrites
// (version resolution), range deletes over flushed and unflushed data, and
// interleaved Flush / Compact / Close-and-reopen (WAL replay, shard-tagged
// records, reopening with a different shard count).
package difftest

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"m4lsm/internal/govern"
	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/m4udf"
	"m4lsm/internal/series"
	"m4lsm/internal/storage"
	"m4lsm/internal/viz"
)

// Oracle is the naive model: per series, the latest value at each
// timestamp after all writes and deletes.
type Oracle map[string]map[int64]float64

// write applies a latest-wins insert.
func (o Oracle) write(id string, p series.Point) {
	m := o[id]
	if m == nil {
		m = map[int64]float64{}
		o[id] = m
	}
	m[p.T] = p.V
}

// delete removes the closed range [start, end].
func (o Oracle) delete(id string, start, end int64) {
	for t := range o[id] {
		if t >= start && t <= end {
			delete(o[id], t)
		}
	}
}

// Merged returns the oracle's view of a series, sorted by time.
func (o Oracle) Merged(id string) series.Series {
	m := o[id]
	out := make(series.Series, 0, len(m))
	for t, v := range m {
		out = append(out, series.Point{T: t, V: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// SeriesIDs lists the oracle's series, sorted.
func (o Oracle) SeriesIDs() []string {
	ids := make([]string, 0, len(o))
	for id := range o {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Case is one generated workload: the engine directory stays on disk for
// the case's lifetime so Close-and-reopen steps can replay the WAL.
type Case struct {
	Seed   int64
	Shards int
	Oracle Oracle

	// PyramidSpans counts query spans Check answered from rollup-pyramid
	// cells, summed over every M4-LSM run. The differential suite asserts
	// the total is nonzero: a pyramid that silently never engages would
	// make every pyramid check vacuous.
	PyramidSpans int64

	engine *lsm.Engine
	dir    string
	ids    []string
	tMax   int64
	// value draws the value for a write at timestamp t. The default is
	// coarsely quantized (ties stress the operators' representative-point
	// selection); GenerateRepr swaps in an injective t→v mapping so
	// bit-for-bit representation comparisons are well-defined.
	value func(rng *rand.Rand, t int64) float64
}

// opKind is the per-step action distribution.
const (
	opWrite = iota
	opOverwrite
	opDelete
	opFlush
	opCompact
	opReopen
)

// Generate builds a random workload from seed and applies it to a fresh
// engine in dir and to the oracle. Steps interleave out-of-order writes,
// same-timestamp overwrites, range deletes, flushes, compactions and full
// close-and-reopen cycles (reopening sometimes changes the shard count, so
// shard-tagged WAL replay across resharding is exercised constantly).
func Generate(seed int64, dir string) (*Case, error) {
	return generate(seed, dir, false)
}

func generate(seed int64, dir string, tieFree bool) (*Case, error) {
	rng := rand.New(rand.NewSource(seed))
	c := &Case{
		Seed:   seed,
		Shards: 1 + rng.Intn(4),
		Oracle: Oracle{},
		dir:    dir,
		tMax:   int64(200 + rng.Intn(800)),
		value: func(rng *rand.Rand, t int64) float64 {
			return float64(rng.Intn(1000)) / 10
		},
	}
	if tieFree {
		c.value = tieFreeValue(c.tMax)
	}
	nSeries := 1 + rng.Intn(4)
	for s := 0; s < nSeries; s++ {
		c.ids = append(c.ids, fmt.Sprintf("root.d%d", s))
	}
	if err := c.open(); err != nil {
		return nil, err
	}

	steps := 40 + rng.Intn(60)
	for i := 0; i < steps; i++ {
		if err := c.step(rng); err != nil {
			c.engine.Close()
			return nil, fmt.Errorf("seed %d step %d: %w", seed, i, err)
		}
	}
	return c, nil
}

func (c *Case) open() error {
	e, err := lsm.Open(lsm.Options{
		Dir:            c.dir,
		FlushThreshold: 16,
		NumShards:      c.Shards,
	})
	if err != nil {
		return err
	}
	c.engine = e
	return nil
}

// Close releases the engine.
func (c *Case) Close() error { return c.engine.Close() }

func (c *Case) step(rng *rand.Rand) error {
	id := c.ids[rng.Intn(len(c.ids))]
	switch pick(rng, []int{40, 15, 15, 12, 8, 10}) {
	case opWrite:
		// A burst of out-of-order writes.
		n := 1 + rng.Intn(12)
		pts := make([]series.Point, n)
		for i := range pts {
			t := rng.Int63n(c.tMax)
			pts[i] = series.Point{T: t, V: c.value(rng, t)}
		}
		if err := c.engine.Write(id, pts...); err != nil {
			return err
		}
		for _, p := range pts {
			c.Oracle.write(id, p)
		}
	case opOverwrite:
		// Rewrite timestamps the series already holds: latest wins.
		existing := c.Oracle.Merged(id)
		if len(existing) == 0 {
			return nil
		}
		n := 1 + rng.Intn(4)
		pts := make([]series.Point, 0, n)
		for i := 0; i < n; i++ {
			t := existing[rng.Intn(len(existing))].T
			pts = append(pts, series.Point{T: t, V: c.value(rng, t)})
		}
		if err := c.engine.Write(id, pts...); err != nil {
			return err
		}
		for _, p := range pts {
			c.Oracle.write(id, p)
		}
	case opDelete:
		start := rng.Int63n(c.tMax)
		end := start + rng.Int63n(c.tMax/4+1)
		if err := c.engine.Delete(id, start, end); err != nil {
			return err
		}
		c.Oracle.delete(id, start, end)
	case opFlush:
		return c.engine.Flush()
	case opCompact:
		return c.engine.Compact()
	case opReopen:
		if err := c.engine.Close(); err != nil {
			return err
		}
		// Half the reopens change the shard count: the WAL's shard tags
		// must not pin records to a layout.
		if rng.Intn(2) == 0 {
			c.Shards = 1 + rng.Intn(4)
		}
		return c.open()
	}
	return nil
}

// pick draws an index from a weight table.
func pick(rng *rand.Rand, weights []int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	n := rng.Intn(total)
	for i, w := range weights {
		if n < w {
			return i
		}
		n -= w
	}
	return len(weights) - 1
}

// Check verifies the pyramid's structural invariants, then answers several
// M4 query shapes four ways per series and fails on the first disagreement. The (tqs, tqe, w) shapes cover the full range, a
// strict subrange, a range extending past the data, and w both smaller and
// larger than the point count. It also cross-checks the batched multi-series
// path against per-series queries, and rasterizes the M4 reduction against
// the oracle's full merged series at a small canvas to assert the paper's
// pixel-equivalence guarantee.
func (c *Case) Check() error {
	queries := []m4.Query{
		{Tqs: 0, Tqe: c.tMax, W: 7},
		{Tqs: 0, Tqe: c.tMax, W: 31},
		{Tqs: c.tMax / 4, Tqe: c.tMax / 2, W: 5},
		{Tqs: c.tMax / 3, Tqe: 2 * c.tMax, W: 13},
		{Tqs: 0, Tqe: c.tMax, W: int(c.tMax) * 2}, // w > range: zero-width spans
	}
	for _, id := range c.ids {
		if err := c.engine.PyrCheckInvariants(id); err != nil {
			return fmt.Errorf("seed %d: pyramid invariants: %w", c.Seed, err)
		}
	}
	for _, q := range queries {
		if err := q.Validate(); err != nil {
			return fmt.Errorf("seed %d: bad generated query %+v: %w", c.Seed, q, err)
		}
		snaps := make([]*storage.Snapshot, len(c.ids))
		for i, id := range c.ids {
			snap, err := c.engine.Snapshot(id, q.Range())
			if err != nil {
				return fmt.Errorf("seed %d: snapshot %s: %w", c.Seed, id, err)
			}
			snaps[i] = snap
		}
		multi, err := m4lsm.ComputeMulti(snaps, q)
		if err != nil {
			return fmt.Errorf("seed %d: m4lsm multi %+v: %w", c.Seed, q, err)
		}
		for si, id := range c.ids {
			ref, err := m4.ComputeSeries(q, c.Oracle.Merged(id))
			if err != nil {
				return fmt.Errorf("seed %d: oracle %s: %w", c.Seed, id, err)
			}
			snap, err := c.engine.Snapshot(id, q.Range())
			if err != nil {
				return err
			}
			lsmAggs, err := m4lsm.Compute(snap, q)
			if err != nil {
				return fmt.Errorf("seed %d: m4lsm %s %+v: %w", c.Seed, id, q, err)
			}
			c.PyramidSpans += snap.Stats.PyramidSpans
			snap, err = c.engine.Snapshot(id, q.Range())
			if err != nil {
				return err
			}
			noPyr, err := m4lsm.ComputeWithOptions(snap, q, m4lsm.Options{DisablePyramid: true})
			if err != nil {
				return fmt.Errorf("seed %d: m4lsm (pyramid off) %s %+v: %w", c.Seed, id, q, err)
			}
			snap, err = c.engine.Snapshot(id, q.Range())
			if err != nil {
				return err
			}
			udfAggs, err := m4udf.Compute(snap, q)
			if err != nil {
				return fmt.Errorf("seed %d: m4udf %s %+v: %w", c.Seed, id, q, err)
			}
			for i := range ref {
				if !m4.Equivalent(lsmAggs[i], ref[i]) {
					return fmt.Errorf("seed %d: %s %+v span %d: m4lsm %v != oracle %v",
						c.Seed, id, q, i, lsmAggs[i], ref[i])
				}
				if !m4.Equivalent(noPyr[i], ref[i]) {
					return fmt.Errorf("seed %d: %s %+v span %d: m4lsm (pyramid off) %v != oracle %v",
						c.Seed, id, q, i, noPyr[i], ref[i])
				}
				if !m4.Equivalent(udfAggs[i], ref[i]) {
					return fmt.Errorf("seed %d: %s %+v span %d: m4udf %v != oracle %v",
						c.Seed, id, q, i, udfAggs[i], ref[i])
				}
				if !m4.Equivalent(multi[si][i], ref[i]) {
					return fmt.Errorf("seed %d: %s %+v span %d: batched %v != oracle %v",
						c.Seed, id, q, i, multi[si][i], ref[i])
				}
			}
		}
	}
	if err := c.checkBudget(); err != nil {
		return err
	}
	return c.checkPixels()
}

// checkBudget asserts budget equivalence: a query run under a generous
// per-query budget (limits far above what the workload can consume) must
// return bit-for-bit the unbudgeted answer in both operators, with no
// degradation warnings — budget accounting may never change a result that
// fits the budget.
func (c *Case) checkBudget() error {
	q := m4.Query{Tqs: 0, Tqe: c.tMax, W: 31}
	generous := govern.Limits{MaxChunks: 1 << 30, MaxPoints: 1 << 40, Timeout: time.Hour}
	// Ties in value may resolve to different (equally valid) representative
	// timestamps between the two operators, so each operator is compared
	// against its own unbudgeted run, not against the other's.
	ops := []struct {
		name string
		run  func(*storage.Snapshot, *govern.Budget) ([]m4.Aggregate, error)
	}{
		{"m4lsm", func(s *storage.Snapshot, b *govern.Budget) ([]m4.Aggregate, error) {
			return m4lsm.ComputeWithOptions(s, q, m4lsm.Options{Budget: b})
		}},
		{"m4udf", func(s *storage.Snapshot, b *govern.Budget) ([]m4.Aggregate, error) {
			return m4udf.ComputeWithOptions(s, q, m4udf.Options{Budget: b})
		}},
	}
	for _, id := range c.ids {
		for _, op := range ops {
			snap, err := c.engine.Snapshot(id, q.Range())
			if err != nil {
				return err
			}
			plain, err := op.run(snap, nil)
			if err != nil {
				return err
			}
			snap, err = c.engine.Snapshot(id, q.Range())
			if err != nil {
				return err
			}
			before := snap.Warnings.Len()
			budgeted, err := op.run(snap, govern.NewBudget(generous))
			if err != nil {
				return fmt.Errorf("seed %d: %s %s under generous budget: %w", c.Seed, op.name, id, err)
			}
			if snap.Warnings.Len() != before {
				return fmt.Errorf("seed %d: %s %s: generous budget produced warnings", c.Seed, op.name, id)
			}
			if len(budgeted) != len(plain) {
				return fmt.Errorf("seed %d: %s %s: budgeted span count %d != %d", c.Seed, op.name, id, len(budgeted), len(plain))
			}
			for i := range plain {
				if budgeted[i] != plain[i] {
					return fmt.Errorf("seed %d: %s %s span %d: budgeted %v != unbudgeted %v",
						c.Seed, op.name, id, i, budgeted[i], plain[i])
				}
			}
		}
	}
	return nil
}

// checkPixels asserts the error-free visualization guarantee on this case:
// rasterizing the M4 reduction must light exactly the pixels of
// rasterizing the oracle's full merged series.
func (c *Case) checkPixels() error {
	const w, h = 41, 17
	q := m4.Query{Tqs: 0, Tqe: c.tMax, W: w}
	for _, id := range c.ids {
		full := c.Oracle.Merged(id)
		snap, err := c.engine.Snapshot(id, q.Range())
		if err != nil {
			return err
		}
		aggs, err := m4lsm.Compute(snap, q)
		if err != nil {
			return err
		}
		reduced := m4.Points(aggs)
		vp := viz.ViewportFor(full, q.Tqs, q.Tqe)
		a := viz.Rasterize(full, vp, w, h)
		b := viz.Rasterize(reduced, vp, w, h)
		if d := viz.Diff(a, b); d != 0 {
			return fmt.Errorf("seed %d: %s: %d pixels differ between full and M4-reduced render",
				c.Seed, id, d)
		}
	}
	return nil
}

// Run generates, checks and closes one case; the returned error names the
// seed on any failure.
func Run(seed int64, dir string) error {
	c, err := Generate(seed, dir)
	if err != nil {
		return err
	}
	defer c.Close()
	return c.Check()
}
