package obs

import (
	"encoding/json"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one wide query-log record: everything worth knowing about a
// single /query or /render request in one flat structure, so "why was this
// request slow" is answered by one grep of the JSONL file (by request id,
// linkable from the slow-query log) instead of a join across metrics,
// traces and access logs.
type Event struct {
	When      time.Time `json:"when"`
	RequestID string    `json:"requestId,omitempty"`
	Endpoint  string    `json:"endpoint"`
	// Statement is the m4ql text for /query and the parameter summary for
	// /render.
	Statement string `json:"statement,omitempty"`
	Status    int    `json:"status"`
	ElapsedNs int64  `json:"elapsedNs"`
	Operator  string `json:"operator,omitempty"`
	Partial   bool   `json:"partial,omitempty"`
	Warnings  int    `json:"warnings,omitempty"`
	Error     string `json:"error,omitempty"`

	// Ingestion attribution, for /write events.
	PointsWritten int64 `json:"pointsWritten,omitempty"`
	SeriesWritten int   `json:"seriesWritten,omitempty"`

	// Budget spend: the query's physical cost counters (what a per-query
	// govern budget charges against).
	ChunksLoaded     int64 `json:"chunksLoaded,omitempty"`
	TimeBlocksLoaded int64 `json:"timeBlocksLoaded,omitempty"`
	BytesRead        int64 `json:"bytesRead,omitempty"`
	PointsDecoded    int64 `json:"pointsDecoded,omitempty"`

	// Cache hit/miss attribution for the loads above.
	CacheHits   int64 `json:"cacheHits,omitempty"`
	CacheMisses int64 `json:"cacheMisses,omitempty"`

	// Rollup-pyramid attribution: cells consulted vs spans that fell back
	// to the span×G path.
	PyramidSpans         int64 `json:"pyramidSpans,omitempty"`
	PyramidCells         int64 `json:"pyramidCells,omitempty"`
	PyramidFallbackSpans int64 `json:"pyramidFallbackSpans,omitempty"`

	// Trace attachment, present when the request executed with an armed
	// trace (TRACE clause or ?trace=1): the trace id and per-phase timings.
	TraceID string        `json:"traceId,omitempty"`
	Phases  []PhaseTiming `json:"phases,omitempty"`
}

// EventLog is the bounded asynchronous writer behind the wide-event log.
// Record never blocks: events go into a fixed-capacity channel drained by
// one writer goroutine that appends JSONL to an optional file and keeps the
// most recent events in a ring for /debug/events. When the channel is full
// the event is dropped and counted — an overloaded query path must never
// stall on its own telemetry.
//
// The nil *EventLog discards everything, so wiring is optional.
type EventLog struct {
	ch   chan Event
	quit chan struct{}
	done chan struct{}

	file *os.File // nil: memory-only
	log  *slog.Logger

	mu     sync.Mutex
	ring   []Event
	next   int
	filled bool

	recorded   atomic.Int64
	written    atomic.Int64
	dropped    atomic.Int64
	writeErrs  atomic.Int64
	closeOnce  sync.Once
	closedFile error
}

// NewEventLog builds the log. path names the JSONL file to append to
// ("" keeps events in memory only); buffer is the channel capacity
// (default 256); ringCap bounds the in-memory tail served by
// /debug/events (default 256). The file is opened append-only so several
// server incarnations interleave whole lines, never torn ones.
func NewEventLog(path string, buffer, ringCap int, logger *slog.Logger) (*EventLog, error) {
	if buffer <= 0 {
		buffer = 256
	}
	if ringCap <= 0 {
		ringCap = 256
	}
	if logger == nil {
		logger = slog.Default()
	}
	l := &EventLog{
		ch:   make(chan Event, buffer),
		quit: make(chan struct{}),
		done: make(chan struct{}),
		ring: make([]Event, ringCap),
		log:  logger,
	}
	if path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		l.file = f
	}
	go l.run()
	return l, nil
}

// Record enqueues one event. Never blocks: a full buffer drops the event
// and counts it (Dropped). Safe after Close (the event is silently
// discarded).
func (l *EventLog) Record(e Event) {
	if l == nil {
		return
	}
	l.recorded.Add(1)
	select {
	case l.ch <- e:
	default:
		l.dropped.Add(1)
	}
}

// run is the single writer goroutine: it drains the channel into the ring
// and the file, and on Close drains whatever is still buffered before
// exiting.
func (l *EventLog) run() {
	defer close(l.done)
	var enc *json.Encoder
	if l.file != nil {
		enc = json.NewEncoder(l.file)
	}
	write := func(e Event) {
		l.mu.Lock()
		l.ring[l.next] = e
		l.next++
		if l.next == len(l.ring) {
			l.next = 0
			l.filled = true
		}
		l.mu.Unlock()
		if enc != nil {
			if err := enc.Encode(e); err != nil {
				if l.writeErrs.Add(1) == 1 {
					l.log.Warn("event log: write", "err", err)
				}
				return
			}
		}
		l.written.Add(1)
	}
	for {
		select {
		case e := <-l.ch:
			write(e)
		case <-l.quit:
			for {
				select {
				case e := <-l.ch:
					write(e)
				default:
					return
				}
			}
		}
	}
}

// Recent returns the buffered tail of the log, newest first. Nil returns
// nil.
func (l *EventLog) Recent() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.filled {
		n = len(l.ring)
	}
	out := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		pos := l.next - 1 - i
		if pos < 0 {
			pos += len(l.ring)
		}
		out = append(out, l.ring[pos])
	}
	return out
}

// Recorded returns how many events Record accepted (including later drops).
func (l *EventLog) Recorded() int64 {
	if l == nil {
		return 0
	}
	return l.recorded.Load()
}

// Written returns how many events reached the ring (and file, when set).
func (l *EventLog) Written() int64 {
	if l == nil {
		return 0
	}
	return l.written.Load()
}

// Dropped returns how many events were discarded on a full buffer.
func (l *EventLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.dropped.Load()
}

// WriteErrors returns how many file appends failed.
func (l *EventLog) WriteErrors() int64 {
	if l == nil {
		return 0
	}
	return l.writeErrs.Load()
}

// Close drains the buffered events, stops the writer goroutine and closes
// the file. Record stays safe to call afterwards (events are discarded).
func (l *EventLog) Close() error {
	if l == nil {
		return nil
	}
	l.closeOnce.Do(func() {
		close(l.quit)
		<-l.done
		if l.file != nil {
			l.closedFile = l.file.Close()
		}
	})
	return l.closedFile
}
