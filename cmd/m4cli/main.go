// Command m4cli is an interactive shell over a database directory: it
// accepts m4ql queries (Appendix A.1 syntax), EXPLAIN variants, and a few
// meta commands.
//
//	m4cli -dir ./db
//	m4> SELECT M4(*) FROM KOB WHERE time >= 0 AND time < 2000000000000 GROUP BY SPANS(10)
//	m4> EXPLAIN SELECT M4(*) FROM KOB WHERE ... GROUP BY SPANS(1000) USING LSM
//	m4> .series
//	m4> .quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"m4lsm/internal/lsm"
	"m4lsm/internal/m4ql"
)

func main() {
	dir := flag.String("dir", "m4db", "database directory")
	flag.Parse()
	engine, err := lsm.Open(lsm.Options{Dir: *dir})
	if err != nil {
		log.Fatalf("m4cli: %v", err)
	}
	defer engine.Close()
	fmt.Printf("m4cli: %s (%d series). Type .help for commands.\n",
		*dir, len(engine.SeriesIDs()))
	repl(engine, os.Stdin, os.Stdout)
}

func repl(engine *lsm.Engine, in io.Reader, out io.Writer) {
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Fprint(out, "m4> ")
		if !scanner.Scan() {
			fmt.Fprintln(out)
			return
		}
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			continue
		case line == ".quit" || line == ".exit":
			return
		case line == ".help":
			fmt.Fprintln(out, `commands:
  SELECT M4(*) FROM <series> WHERE time >= a AND time < b GROUP BY SPANS(w) [USING LSM|UDF]
  EXPLAIN SELECT ...   show the physical plan and measured cost
  .series              list stored series
  .info                storage statistics
  .help                this message
  .quit                exit`)
		case line == ".series":
			for _, id := range engine.SeriesIDs() {
				fmt.Fprintln(out, id)
			}
		case line == ".info":
			info := engine.Info()
			fmt.Fprintf(out, "files=%d chunks=%d memtablePoints=%d deletes=%d nextVersion=%d\n",
				info.Files, info.Chunks, info.MemtablePoints, info.Deletes, info.NextVersion)
		case strings.HasPrefix(line, "."):
			fmt.Fprintf(out, "unknown command %s (try .help)\n", line)
		default:
			res, explain, err := m4ql.RunAny(engine, line)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			if explain != "" {
				fmt.Fprint(out, explain)
				continue
			}
			fmt.Fprint(out, res.Text())
		}
	}
}
