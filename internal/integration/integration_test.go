// Package integration exercises the whole stack end-to-end through the
// file-backed engine: random workloads of out-of-order writes, overwrites,
// range deletes, flushes and compactions, checked span-by-span against an
// in-memory oracle, plus crash-recovery loops and concurrent access.
package integration

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"m4lsm/internal/lsm"
	"m4lsm/internal/m4"
	"m4lsm/internal/m4lsm"
	"m4lsm/internal/m4udf"
	"m4lsm/internal/mergeread"
	"m4lsm/internal/series"
)

// oracle is the in-memory ground truth: a map applying the same overwrite
// and delete semantics as the engine.
type oracle struct {
	points map[int64]float64
}

func newOracle() *oracle { return &oracle{points: map[int64]float64{}} }

func (o *oracle) write(pts []series.Point) {
	for _, p := range pts {
		o.points[p.T] = p.V
	}
}

func (o *oracle) delete(start, end int64) {
	for t := range o.points {
		if t >= start && t <= end {
			delete(o.points, t)
		}
	}
}

func (o *oracle) series(r series.TimeRange) series.Series {
	var out series.Series
	for t, v := range o.points {
		if r.Contains(t) {
			out = append(out, series.Point{T: t, V: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// randomBatch produces writes with colliding timestamps so overwrites are
// frequent.
func randomBatch(rng *rand.Rand, horizon int64) []series.Point {
	n := 1 + rng.Intn(20)
	batch := make([]series.Point, 0, n)
	seen := map[int64]bool{}
	for len(batch) < n {
		t := rng.Int63n(horizon)
		if seen[t] {
			continue
		}
		seen[t] = true
		batch = append(batch, series.Point{T: t, V: float64(rng.Intn(100))})
	}
	return batch
}

func TestRandomWorkloadEndToEnd(t *testing.T) {
	const horizon = 2000
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			e, err := lsm.Open(lsm.Options{Dir: t.TempDir(), FlushThreshold: 32})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			o := newOracle()
			for op := 0; op < 150; op++ {
				switch rng.Intn(10) {
				case 0:
					if err := e.Flush(); err != nil {
						t.Fatal(err)
					}
				case 1:
					start := rng.Int63n(horizon)
					end := start + rng.Int63n(horizon/8)
					if err := e.Delete("s", start, end); err != nil {
						t.Fatal(err)
					}
					o.delete(start, end)
				case 2:
					if err := e.Compact(); err != nil {
						t.Fatal(err)
					}
				default:
					batch := randomBatch(rng, horizon)
					if err := e.Write("s", batch...); err != nil {
						t.Fatal(err)
					}
					o.write(batch)
				}
				if op%25 != 24 {
					continue
				}
				// Check merged contents and both M4 operators.
				r := series.TimeRange{Start: rng.Int63n(horizon / 2), End: horizon/2 + rng.Int63n(horizon/2) + 1}
				snap, err := e.Snapshot("s", r)
				if err != nil {
					t.Fatal(err)
				}
				got, err := mergeread.Merge(snap, r)
				if err != nil {
					t.Fatal(err)
				}
				want := o.series(r)
				if len(got) != len(want) {
					t.Fatalf("seed %d op %d: merged %d points, oracle %d", seed, op, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("seed %d op %d: point %d: %v vs %v", seed, op, i, got[i], want[i])
					}
				}
				q := m4.Query{Tqs: r.Start, Tqe: r.End, W: 1 + rng.Intn(16)}
				wantAggs, err := m4.ComputeSeries(q, want)
				if err != nil {
					t.Fatal(err)
				}
				snap, _ = e.Snapshot("s", r)
				lsmAggs, err := m4lsm.Compute(snap, q)
				if err != nil {
					t.Fatal(err)
				}
				snap, _ = e.Snapshot("s", r)
				udfAggs, err := m4udf.Compute(snap, q)
				if err != nil {
					t.Fatal(err)
				}
				for i := range wantAggs {
					if !m4.Equivalent(lsmAggs[i], wantAggs[i]) {
						t.Fatalf("seed %d op %d span %d: lsm %v, oracle %v", seed, op, i, lsmAggs[i], wantAggs[i])
					}
					if !m4.Equivalent(udfAggs[i], wantAggs[i]) {
						t.Fatalf("seed %d op %d span %d: udf %v, oracle %v", seed, op, i, udfAggs[i], wantAggs[i])
					}
				}
			}
		})
	}
}

// TestCrashRecoveryLoop interleaves work with simulated crashes (reopening
// the directory without Close) and verifies no acknowledged write or
// delete is lost.
func TestCrashRecoveryLoop(t *testing.T) {
	const horizon = 500
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(99))
	o := newOracle()
	for round := 0; round < 8; round++ {
		e, err := lsm.Open(lsm.Options{Dir: dir, FlushThreshold: 16, SyncWAL: true})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for op := 0; op < 30; op++ {
			if rng.Intn(8) == 0 {
				start := rng.Int63n(horizon)
				end := start + rng.Int63n(50)
				if err := e.Delete("s", start, end); err != nil {
					t.Fatal(err)
				}
				o.delete(start, end)
				continue
			}
			batch := randomBatch(rng, horizon)
			if err := e.Write("s", batch...); err != nil {
				t.Fatal(err)
			}
			o.write(batch)
		}
		// Crash: abandon the engine without Close or Flush. The next
		// Open must recover from WAL + files (file handles stay open
		// until process exit, mirroring a crashed process).
		r := series.TimeRange{Start: 0, End: horizon}
		e2, err := lsm.Open(lsm.Options{Dir: dir, FlushThreshold: 16, SyncWAL: true})
		if err != nil {
			t.Fatalf("round %d reopen: %v", round, err)
		}
		snap, err := e2.Snapshot("s", r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := mergeread.Merge(snap, r)
		if err != nil {
			t.Fatal(err)
		}
		want := o.series(r)
		if len(got) != len(want) {
			t.Fatalf("round %d: recovered %d points, oracle %d", round, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d: point %d: %v vs %v", round, i, got[i], want[i])
			}
		}
		e2.Close()
		// Reopen for the next round (the "crashed" engine e is dropped).
		_ = e
	}
}

// TestConcurrentReadersAndWriters checks that queries race-free coexist
// with writes, deletes, flushes and compactions. Results are only checked
// for internal consistency (the data is in flux); run with -race.
func TestConcurrentReadersAndWriters(t *testing.T) {
	e, err := lsm.Open(lsm.Options{Dir: t.TempDir(), FlushThreshold: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const horizon = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := e.Write("s", randomBatch(rng, horizon)...); err != nil {
					t.Error(err)
					return
				}
				if rng.Intn(20) == 0 {
					start := rng.Int63n(horizon)
					if err := e.Delete("s", start, start+100); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%10 == 9 {
				if err := e.Compact(); err != nil {
					t.Error(err)
					return
				}
			} else if err := e.Flush(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		q := m4.Query{Tqs: 0, Tqe: horizon, W: 1 + rng.Intn(20)}
		snap, err := e.Snapshot("s", q.Range())
		if err != nil {
			t.Fatal(err)
		}
		aggs, err := m4lsm.Compute(snap, q)
		if err != nil {
			t.Fatal(err)
		}
		for si, a := range aggs {
			if a.Empty {
				continue
			}
			span := q.Span(si)
			if !span.Contains(a.First.T) || !span.Contains(a.Last.T) ||
				!span.Contains(a.Bottom.T) || !span.Contains(a.Top.T) {
				t.Fatalf("span %d %v: aggregate outside span: %v", si, span, a)
			}
			if a.First.T > a.Last.T || a.Bottom.V > a.Top.V {
				t.Fatalf("span %d: inconsistent aggregate %v", si, a)
			}
		}
	}
	close(stop)
	wg.Wait()
}
