package server

import (
	"encoding/json"
	"fmt"
	"html"
	"image"
	"image/png"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"m4lsm/internal/lsm"
	"m4lsm/internal/obs"
	"m4lsm/internal/series"
)

// newSelfObsServer builds a server whose sampler exists but does not tick on
// its own (SelfMetricsInterval < 0), so tests drive SampleOnce with
// controlled timestamps.
func newSelfObsServer(t *testing.T, cfg Config) (*httptest.Server, *Handler) {
	t.Helper()
	cfg.SelfMetricsInterval = -1
	e, err := lsm.Open(lsm.Options{Dir: t.TempDir(), Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		e.Write("root.s1", series.Point{T: int64(i * 10), V: float64((i * 7) % 50)})
	}
	e.Flush()
	h := NewWith(e, cfg)
	srv := httptest.NewServer(h)
	t.Cleanup(func() {
		srv.Close()
		h.Close()
		e.Close()
	})
	return srv, h
}

// traffic issues a few real /query and /render requests so the registry has
// request metrics worth sampling.
func traffic(t *testing.T, base string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		q := "SELECT M4(*) FROM root.s1 WHERE time >= 0 AND time < 5000 GROUP BY SPANS(5) USING LSM"
		if code := getJSON(t, base+"/query?q="+strings.ReplaceAll(q, " ", "+"), nil); code != 200 {
			t.Fatalf("query status %d", code)
		}
		resp, err := http.Get(base + "/render?series=root.s1&tqs=0&tqe=5000&w=50&h=20")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("render status %d", resp.StatusCode)
		}
	}
}

var imgSrcRe = regexp.MustCompile(`<img src="([^"]+)"`)

func TestDashboardRendersChartsThroughM4(t *testing.T) {
	srv, h := newSelfObsServer(t, Config{})
	traffic(t, srv.URL, 3)

	// Several sampler ticks at distinct recent timestamps, so charts have
	// line segments inside the dashboard's 15m window.
	now := time.Now()
	for i := 4; i >= 0; i-- {
		if _, err := h.Sampler().SampleOnce(now.Add(-time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(srv.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("dashboard status %d: %s", resp.StatusCode, page)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type %q", ct)
	}

	matches := imgSrcRe.FindAllStringSubmatch(string(page), -1)
	if len(matches) < 6 {
		t.Fatalf("dashboard has %d charts, want >= 6:\n%s", len(matches), page)
	}
	lit := 0
	for _, m := range matches {
		src := html.UnescapeString(m[1])
		if !strings.HasPrefix(src, "/render?series=root.sys.") {
			t.Fatalf("chart src %q does not go through /render over root.sys.*", src)
		}
		r2, err := http.Get(srv.URL + src)
		if err != nil {
			t.Fatal(err)
		}
		img, derr := png.Decode(r2.Body)
		r2.Body.Close()
		if r2.StatusCode != 200 {
			t.Fatalf("chart %s: status %d", src, r2.StatusCode)
		}
		if derr != nil {
			t.Fatalf("chart %s: %v", src, derr)
		}
		if img.Bounds().Dx() == 0 || img.Bounds().Dy() == 0 {
			t.Fatalf("chart %s: empty image", src)
		}
		if countLit(img) > 0 {
			lit++
		}
	}
	if lit == 0 {
		t.Error("no chart drew a single data pixel")
	}
}

// countLit counts pixels that differ from the canvas background (white).
func countLit(img image.Image) int {
	n := 0
	b := img.Bounds()
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r, g, bl, _ := img.At(x, y).RGBA()
			if r != 0xffff || g != 0xffff || bl != 0xffff {
				n++
			}
		}
	}
	return n
}

func TestDashboardWindowValidation(t *testing.T) {
	srv, _ := newSelfObsServer(t, Config{})
	if code := getJSON(t, srv.URL+"/dashboard?window=bogus", nil); code != 400 {
		t.Errorf("bad window: status %d, want 400", code)
	}
	if code := getJSON(t, srv.URL+"/dashboard?window=-5m", nil); code != 400 {
		t.Errorf("negative window: status %d, want 400", code)
	}
}

func TestSysSeriesQueryableViaM4QL(t *testing.T) {
	srv, h := newSelfObsServer(t, Config{})
	traffic(t, srv.URL, 2)
	base := time.Now().Add(-10 * time.Second)
	for i := 0; i < 5; i++ {
		if _, err := h.Sampler().SampleOnce(base.Add(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	tqs := base.UnixMilli()
	tqe := base.Add(10 * time.Second).UnixMilli()

	// A direct series id and the root.sys.* prefix wildcard both answer
	// (the wildcard form returns per-series row blocks).
	for _, from := range []string{"root.sys.selfmetrics_samples_total", "root.sys.*"} {
		q := fmt.Sprintf("SELECT M4(*) FROM %s WHERE time >= %d AND time < %d GROUP BY SPANS(4)", from, tqs, tqe)
		var res struct {
			Rows   [][]float64 `json:"rows"`
			Series []struct {
				SeriesID string      `json:"seriesId"`
				Rows     [][]float64 `json:"rows"`
			} `json:"series"`
		}
		code := getJSON(t, srv.URL+"/query?q="+strings.ReplaceAll(q, " ", "+"), &res)
		if code != 200 {
			t.Fatalf("%s: status %d", from, code)
		}
		rows := len(res.Rows)
		for _, sr := range res.Series {
			rows += len(sr.Rows)
		}
		if rows == 0 {
			t.Errorf("%s: no rows", from)
		}
		if from == "root.sys.*" && len(res.Series) < 6 {
			t.Errorf("wildcard matched %d sys series, want >= 6", len(res.Series))
		}
	}

	// The metric history round-trips: the sampled counter is monotonically
	// non-decreasing in the stored points.
	q := fmt.Sprintf("SELECT M4(*) FROM root.sys.selfmetrics_samples_total WHERE time >= %d AND time < %d GROUP BY SPANS(1)", tqs, tqe)
	var res struct {
		Columns []string    `json:"columns"`
		Rows    [][]float64 `json:"rows"`
	}
	if code := getJSON(t, srv.URL+"/query?q="+strings.ReplaceAll(q, " ", "+"), &res); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestDebugEventsEndpoint(t *testing.T) {
	srv, h := newSelfObsServer(t, Config{})
	q := "SELECT M4(*) FROM root.s1 WHERE time >= 0 AND time < 5000 GROUP BY SPANS(5) USING LSM"
	resp, err := http.Get(srv.URL + "/query?q=" + strings.ReplaceAll(q, " ", "+") + "&trace=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	reqID := resp.Header.Get("X-Request-ID")
	resp.Body.Close()
	if reqID == "" {
		t.Fatal("no request id header")
	}
	// Bad statement and render events too.
	getJSON(t, srv.URL+"/query?q=BOGUS", nil)
	traffic(t, srv.URL, 1)
	waitRecordedSettles(t, h, 4) // traced query + bogus + one traffic query/render pair; /debug fetches are not evented

	var body struct {
		Recorded int64       `json:"recorded"`
		Written  int64       `json:"written"`
		Dropped  int64       `json:"dropped"`
		Events   []obs.Event `json:"events"`
	}
	if code := getJSON(t, srv.URL+"/debug/events", &body); code != 200 {
		t.Fatalf("status %d", code)
	}
	if body.Recorded != 4 || body.Dropped != 0 {
		t.Errorf("recorded=%d dropped=%d, want 4/0", body.Recorded, body.Dropped)
	}
	byID := map[string]obs.Event{}
	var badStatement obs.Event
	for _, e := range body.Events {
		byID[e.RequestID] = e
		if e.Status == 400 {
			badStatement = e
		}
	}
	ev, ok := byID[reqID]
	if !ok {
		t.Fatalf("no event for request %s in %+v", reqID, body.Events)
	}
	if ev.Endpoint != "/query" || ev.Status != 200 || ev.Statement == "" ||
		ev.Operator == "" || ev.ElapsedNs <= 0 {
		t.Errorf("query event incomplete: %+v", ev)
	}
	if ev.PointsDecoded == 0 {
		t.Errorf("query event has no budget spend: %+v", ev)
	}
	if ev.TraceID == "" || len(ev.Phases) == 0 {
		t.Errorf("traced query event missing phase timings: %+v", ev)
	}
	if badStatement.Error == "" {
		t.Errorf("400 event carries no error: %+v", badStatement)
	}

	// The slow-query log links to the same request id.
	var slow struct {
		Entries []obs.SlowEntry `json:"entries"`
	}
	getJSON(t, srv.URL+"/debug/slowlog", &slow)
	for _, se := range slow.Entries {
		if se.RequestID != "" {
			if _, ok := byID[se.RequestID]; !ok {
				t.Errorf("slowlog request %s has no wide event", se.RequestID)
			}
		}
	}
}

// waitRecordedSettles polls until the event log has recorded want events
// (the final Record runs in a deferred handler after the response body is
// flushed, so the client can win the race).
func waitRecordedSettles(t *testing.T, h *Handler, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for h.Events().Recorded() < want {
		if time.Now().After(deadline) {
			t.Fatalf("event log stuck at %d recorded, want %d", h.Events().Recorded(), want)
		}
		runtime.Gosched()
	}
}

// TestExactlyOneEventPerRequest hammers /query and /render concurrently —
// including shed 429s from a zero-queue gate — and requires the event count
// to equal the request count exactly.
func TestExactlyOneEventPerRequest(t *testing.T) {
	srv, h := newSelfObsServer(t, Config{
		QuerySlots:      2,
		QueryQueueDepth: 1,
		QueryQueueWait:  -1, // full queue sheds immediately
	})
	const clients, per = 8, 10
	var wg sync.WaitGroup
	var mu sync.Mutex
	status := map[int]int{}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				var url string
				if (c+i)%2 == 0 {
					q := "SELECT M4(*) FROM root.s1 WHERE time >= 0 AND time < 5000 GROUP BY SPANS(50) USING LSM"
					url = srv.URL + "/query?q=" + strings.ReplaceAll(q, " ", "+")
				} else {
					url = srv.URL + "/render?series=root.s1&tqs=0&tqe=5000&w=100&h=40"
				}
				resp, err := http.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mu.Lock()
				status[resp.StatusCode]++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	const total = clients * per
	waitRecordedSettles(t, h, total)
	if got := h.Events().Recorded(); got != total {
		t.Fatalf("recorded %d events for %d requests (status mix %v)", got, total, status)
	}
	if h.Events().Dropped() != 0 {
		t.Errorf("dropped %d events with default buffer", h.Events().Dropped())
	}
	if status[200] == 0 {
		t.Errorf("no request succeeded: %v", status)
	}

	// Every response status appears in the events with matching counts.
	recent := h.Events().Recent()
	evStatus := map[int]int{}
	for _, e := range recent {
		evStatus[e.Status]++
	}
	for code, n := range status {
		if evStatus[code] != n {
			t.Errorf("status %d: %d responses but %d events (responses %v, events %v)",
				code, n, evStatus[code], status, evStatus)
		}
	}
	if status[429] > 0 {
		var shed *obs.Event
		for i := range recent {
			if recent[i].Status == 429 {
				shed = &recent[i]
				break
			}
		}
		if shed == nil || shed.Error == "" {
			t.Errorf("shed event missing error: %+v", shed)
		}
	}
}

func TestSlowlogQuantiles(t *testing.T) {
	srv, _ := newSelfObsServer(t, Config{SlowQueryThreshold: time.Nanosecond})
	traffic(t, srv.URL, 3)
	var body struct {
		LatencySeconds map[string]float64 `json:"latencySeconds"`
	}
	if code := getJSON(t, srv.URL+"/debug/slowlog", &body); code != 200 {
		t.Fatalf("status %d", code)
	}
	p50, p95, p99 := body.LatencySeconds["p50"], body.LatencySeconds["p95"], body.LatencySeconds["p99"]
	if p50 <= 0 || p95 < p50 || p99 < p95 {
		t.Errorf("latencySeconds not monotone: p50=%g p95=%g p99=%g", p50, p95, p99)
	}
}

func TestVarzHistogramQuantiles(t *testing.T) {
	srv, _ := newSelfObsServer(t, Config{})
	traffic(t, srv.URL, 2)
	var varz map[string]interface{}
	if code := getJSON(t, srv.URL+"/varz", &varz); code != 200 {
		t.Fatalf("status %d", code)
	}
	h, ok := varz[`http_request_seconds{endpoint="/query"}`].(map[string]interface{})
	if !ok {
		t.Fatalf("varz missing /query histogram")
	}
	for _, q := range []string{"p50", "p95", "p99"} {
		v, ok := h[q].(float64)
		if !ok || v <= 0 {
			t.Errorf("varz histogram %s = %v", q, h[q])
		}
	}
}

func TestBuildInfoExposed(t *testing.T) {
	srv, _ := newSelfObsServer(t, Config{})
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "build_info{commit=") {
		t.Errorf("metrics missing build_info:\n%s", body)
	}
	var health struct {
		Version  string `json:"version"`
		Revision string `json:"revision"`
	}
	if code := getJSON(t, srv.URL+"/healthz", &health); code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	if health.Version == "" || health.Revision == "" {
		t.Errorf("healthz build identity empty: %+v", health)
	}
}

func TestEventLogFileWiring(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/events.jsonl"
	e, err := lsm.Open(lsm.Options{Dir: dir + "/db", Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		e.Write("root.s1", series.Point{T: int64(i * 10), V: float64(i)})
	}
	e.Flush()
	h := NewWith(e, Config{EventLogPath: path})
	srv := httptest.NewServer(h)
	q := "SELECT M4(*) FROM root.s1 WHERE time >= 0 AND time < 1000 GROUP BY SPANS(2)"
	if code := getJSON(t, srv.URL+"/query?q="+strings.ReplaceAll(q, " ", "+"), nil); code != 200 {
		t.Fatalf("query status %d", code)
	}
	waitRecordedSettles(t, h, 1)
	srv.Close()
	if err := h.Close(); err != nil { // drains the writer
		t.Fatal(err)
	}
	e.Close()

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var ev obs.Event
	if err := json.NewDecoder(f).Decode(&ev); err != nil {
		t.Fatalf("decode events.jsonl: %v", err)
	}
	if ev.Endpoint != "/query" || ev.Status != 200 {
		t.Errorf("file event = %+v", ev)
	}
}

func TestHandlerCloseStopsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		e, err := lsm.Open(lsm.Options{Dir: t.TempDir(), Metrics: obs.NewRegistry()})
		if err != nil {
			t.Fatal(err)
		}
		h := NewWith(e, Config{SelfMetricsInterval: time.Millisecond})
		time.Sleep(3 * time.Millisecond) // a few live ticks
		if err := h.Close(); err != nil {
			t.Fatal(err)
		}
		if err := h.Close(); err != nil { // idempotent
			t.Fatal(err)
		}
		e.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
	}
}
