// Package storage defines the LSM storage elements of §2.2 of the paper as
// seen by query operators: read-only chunks described by metadata
// (Definition 2.4), append-only range deletes (Definition 2.5), and the
// snapshot a query runs against. It also owns the cost counters the
// experiments report, so both operators account I/O and decode work the
// same way.
//
// The package is deliberately independent of any file format; package
// tsfile provides the on-disk implementation of ChunkSource and package
// lsm assembles snapshots.
package storage

import (
	"fmt"
	"sync/atomic"

	"m4lsm/internal/encoding"
	"m4lsm/internal/series"
)

// Version is the global incremental version number κ assigned to each chunk
// or delete; larger versions apply later (§2.2.1).
type Version uint64

// InfiniteVersion is larger than any assigned version. The M4-LSM operator
// uses it for the virtual deletes derived from span boundaries (§3.1).
const InfiniteVersion Version = ^Version(0)

// ChunkMeta is the precomputed per-chunk metadata: the four representation
// points {G(C^κ)} plus addressing information. It is read from the chunk
// file footer without touching chunk data.
type ChunkMeta struct {
	SeriesID string
	Version  Version
	Count    int64
	Codec    encoding.Codec

	First  series.Point // FP(C^κ)
	Last   series.Point // LP(C^κ)
	Bottom series.Point // BP(C^κ)
	Top    series.Point // TP(C^κ)

	// Addressing within the chunk file.
	Offset    int64 // file offset of the chunk record
	HeaderLen int64 // bytes of chunk header before the timestamp block
	TimesLen  int64 // bytes of the encoded timestamp block
	ValuesLen int64 // bytes of the encoded value block
}

// Interval returns the closed time interval [FP.t, LP.t] covered by the
// chunk.
func (m ChunkMeta) Interval() (start, end int64) { return m.First.T, m.Last.T }

// OverlapsRange reports whether the chunk's closed interval intersects the
// half-open query range r.
func (m ChunkMeta) OverlapsRange(r series.TimeRange) bool {
	return m.First.T < r.End && m.Last.T >= r.Start
}

func (m ChunkMeta) String() string {
	return fmt.Sprintf("chunk{%s v%d n=%d [%d,%d] bottom=%g top=%g}",
		m.SeriesID, m.Version, m.Count, m.First.T, m.Last.T, m.Bottom.V, m.Top.V)
}

// ComputeMeta derives the four representation points of a sorted series.
// ok is false for an empty series.
func ComputeMeta(data series.Series) (first, last, bottom, top series.Point, ok bool) {
	if len(data) == 0 {
		return
	}
	first, last = data[0], data[len(data)-1]
	bottom, top = data[0], data[0]
	for _, p := range data[1:] {
		if p.V < bottom.V {
			bottom = p
		}
		if p.V > top.V {
			top = p
		}
	}
	return first, last, bottom, top, true
}

// Delete is an append-only range tombstone D^κ deleting the closed time
// range [Start, End] from all chunks with smaller versions (Definition 2.5).
type Delete struct {
	SeriesID string
	Version  Version
	Start    int64 // t_ds, inclusive
	End      int64 // t_de, inclusive
}

// Covers reports t ⊨ D^κ: whether the delete covers timestamp t.
func (d Delete) Covers(t int64) bool { return t >= d.Start && t <= d.End }

func (d Delete) String() string {
	return fmt.Sprintf("delete{%s v%d [%d,%d]}", d.SeriesID, d.Version, d.Start, d.End)
}

// ChunkSource reads chunk contents given their metadata. Implementations:
// tsfile.Reader (disk) and MemSource (tests, memtable snapshots).
type ChunkSource interface {
	// ReadChunk decodes the full chunk (timestamps and values).
	ReadChunk(meta ChunkMeta) (series.Series, error)
	// ReadTimes decodes only the timestamp block. This is the partial
	// load used by BP/TP candidate verification (§3.4): existence
	// probes need timestamps only, at roughly half the I/O and decode
	// cost of a full load.
	ReadTimes(meta ChunkMeta) ([]int64, error)
}

// CachedSource is the optional interface of chunk sources that can report
// whether a read was served from memory (package cache implements it).
// ChunkRef uses it to attribute cache hits and misses to the query's
// Stats, so traces and results show how much I/O the cache absorbed.
type CachedSource interface {
	ChunkSource
	// ReadChunkCached is ReadChunk plus a served-from-cache flag.
	ReadChunkCached(meta ChunkMeta) (data series.Series, hit bool, err error)
	// ReadTimesCached is ReadTimes plus a served-from-cache flag.
	ReadTimesCached(meta ChunkMeta) (ts []int64, hit bool, err error)
}

// ChunkRef binds chunk metadata to its source and to the snapshot's cost
// counters. Operators load chunk contents exclusively through ChunkRef so
// every experiment accounts cost identically.
type ChunkRef struct {
	Meta   ChunkMeta
	source ChunkSource
	stats  *Stats
}

// NewChunkRef builds a reference; stats may be nil.
func NewChunkRef(meta ChunkMeta, src ChunkSource, stats *Stats) ChunkRef {
	return ChunkRef{Meta: meta, source: src, stats: stats}
}

// Load reads and decodes the full chunk.
func (c ChunkRef) Load() (series.Series, error) {
	var (
		data series.Series
		hit  bool
		err  error
	)
	if cs, ok := c.source.(CachedSource); ok {
		data, hit, err = cs.ReadChunkCached(c.Meta)
		c.countCache(hit)
	} else {
		data, err = c.source.ReadChunk(c.Meta)
	}
	if err != nil {
		return nil, fmt.Errorf("load %v: %w", c.Meta, err)
	}
	if c.stats != nil {
		atomic.AddInt64(&c.stats.ChunksLoaded, 1)
		atomic.AddInt64(&c.stats.BytesRead, c.Meta.HeaderLen+c.Meta.TimesLen+c.Meta.ValuesLen)
		atomic.AddInt64(&c.stats.PointsDecoded, c.Meta.Count)
	}
	return data, nil
}

// LoadTimes reads and decodes only the timestamp block.
func (c ChunkRef) LoadTimes() ([]int64, error) {
	var (
		ts  []int64
		hit bool
		err error
	)
	if cs, ok := c.source.(CachedSource); ok {
		ts, hit, err = cs.ReadTimesCached(c.Meta)
		c.countCache(hit)
	} else {
		ts, err = c.source.ReadTimes(c.Meta)
	}
	if err != nil {
		return nil, fmt.Errorf("load times %v: %w", c.Meta, err)
	}
	if c.stats != nil {
		atomic.AddInt64(&c.stats.TimeBlocksLoaded, 1)
		atomic.AddInt64(&c.stats.BytesRead, c.Meta.HeaderLen+c.Meta.TimesLen)
		atomic.AddInt64(&c.stats.PointsDecoded, c.Meta.Count)
	}
	return ts, nil
}

// countCache attributes one cached-source read to the query's stats.
// Hits and misses are only counted when a cache sits under the ref, so
// both stay zero on the paper's cold configuration.
func (c ChunkRef) countCache(hit bool) {
	if c.stats == nil {
		return
	}
	if hit {
		atomic.AddInt64(&c.stats.CacheHits, 1)
	} else {
		atomic.AddInt64(&c.stats.CacheMisses, 1)
	}
}

// PyramidCell is one precomputed rollup cell handed to the planner: the M4
// representation points of the fully merged series (latest version wins,
// deletes applied) restricted to the half-open interval [Start, End). Empty
// reports that the merged series has no surviving point in the interval.
type PyramidCell struct {
	Start, End int64
	First      series.Point
	Last       series.Point
	Bottom     series.Point
	Top        series.Point
	Empty      bool
}

// PyramidSource exposes precomputed multi-resolution rollup cells to the
// query planner. Implementations are snapshots: the cells they hand out
// must reflect the same merged state as the Snapshot's chunk list, or
// report ok=false.
type PyramidSource interface {
	// PlanSpan decomposes the largest cell-aligned interior of [start, end)
	// into contiguous, non-overlapping cells in time order. ok=false means
	// the pyramid cannot cover the span — cells there are missing or
	// invalidated by writes the snapshot must observe — and the caller
	// falls back to raw chunk reads for the whole span. When ok, at least
	// one cell is returned, cells[0].Start is the first aligned instant
	// ≥ start, and the last cell's End is ≤ end; the caller computes the
	// two uncovered boundary fragments exactly.
	PlanSpan(start, end int64) ([]PyramidCell, bool)
}

// Snapshot is the immutable view of one series a query executes against:
// every chunk overlapping the query plus every delete, with shared cost
// counters and a shared warning collector.
type Snapshot struct {
	SeriesID string
	Chunks   []ChunkRef
	Deletes  []Delete
	Stats    *Stats

	// Pyramid, when non-nil, offers precomputed rollup cells consistent
	// with Chunks and Deletes. Operators may ignore it; results must be
	// identical either way.
	Pyramid PyramidSource

	// Warnings collects degradation notes when an operator runs in
	// non-strict mode. May be nil (warnings are discarded).
	Warnings *Warnings

	// OnQuarantine, when set by the snapshot's producer (the LSM engine),
	// is invoked once per chunk whose read failed in non-strict mode, so
	// the engine can quarantine persistently-corrupt chunks across
	// queries. Must be safe for concurrent use.
	OnQuarantine func(meta ChunkMeta, err error)
}

// ReportBadChunk records that a chunk could not be read and was dropped
// from the query: a warning for the result, and a quarantine notification
// for the snapshot's producer.
func (s *Snapshot) ReportBadChunk(meta ChunkMeta, err error) {
	s.Warnings.Add("chunk %s v%d unreadable, skipped: %v", meta.SeriesID, meta.Version, err)
	if s.OnQuarantine != nil {
		s.OnQuarantine(meta, err)
	}
}

// Stats accumulates the I/O and decode work of a query. The experiment
// harness resets it per query and reports it next to wall-clock latency.
//
// A Stats pointer is shared by every ChunkRef of a snapshot and, under the
// parallel operators, by every worker goroutine: all mutations go through
// sync/atomic, so counting is race-free without a lock. Readers that may
// observe the struct while a query is still running must use Load (or the
// atomic-reading String); plain field reads are safe only after the query
// has returned.
type Stats struct {
	ChunksLoaded     int64 // full chunk loads
	TimeBlocksLoaded int64 // timestamp-only partial loads
	BytesRead        int64 // encoded bytes fetched from the source
	PointsDecoded    int64 // points passed through a codec

	// Operator-level counters (filled by m4lsm).
	CandidateRounds int64 // candidate generation/verification iterations
	IndexProbes     int64 // chunk-index probes (Table 1 cases a and b)
	ExistProbes     int64 // Table 1 case a: existence checks for BP/TP verification
	BoundaryProbes  int64 // Table 1 case b: closest-point probes for FP/LP recalculation
	ChunksPruned    int64 // chunks answered purely from metadata

	// Cache attribution (zero when the engine runs without a chunk cache):
	// how many of the loads above were served from memory vs. paid I/O.
	CacheHits   int64
	CacheMisses int64

	// Rollup-pyramid attribution (zero when the snapshot carries no
	// pyramid or the operator ignores it).
	PyramidSpans         int64 // spans answered fully or partially from cells
	PyramidCells         int64 // precomputed cells consulted
	PyramidFallbackSpans int64 // spans that consulted the pyramid but fell back to span×G
}

// fields lists every counter address, shared by the atomic accessors.
func (s *Stats) fields() [14]*int64 {
	return [14]*int64{
		&s.ChunksLoaded, &s.TimeBlocksLoaded, &s.BytesRead, &s.PointsDecoded,
		&s.CandidateRounds, &s.IndexProbes, &s.ExistProbes, &s.BoundaryProbes,
		&s.ChunksPruned, &s.CacheHits, &s.CacheMisses,
		&s.PyramidSpans, &s.PyramidCells, &s.PyramidFallbackSpans,
	}
}

// Sub returns s - o field-wise with plain reads: both sides must be
// settled copies (e.g. from Load). Observability code uses it to compute
// per-phase deltas.
func (s Stats) Sub(o Stats) Stats {
	out := s
	dst, src := out.fields(), o.fields()
	for i, f := range dst {
		*f -= *src[i]
	}
	return out
}

// Map returns the counters keyed by stable lowerCamel names, the form
// traces and /varz expose. The receiver must be a settled copy (from Load).
func (s Stats) Map() map[string]int64 {
	return map[string]int64{
		"chunksLoaded":     s.ChunksLoaded,
		"timeBlocksLoaded": s.TimeBlocksLoaded,
		"bytesRead":        s.BytesRead,
		"pointsDecoded":    s.PointsDecoded,
		"candidateRounds":  s.CandidateRounds,
		"indexProbes":      s.IndexProbes,
		"existProbes":      s.ExistProbes,
		"boundaryProbes":   s.BoundaryProbes,
		"chunksPruned":     s.ChunksPruned,
		"cacheHits":        s.CacheHits,
		"cacheMisses":      s.CacheMisses,

		"pyramidSpans":         s.PyramidSpans,
		"pyramidCells":         s.PyramidCells,
		"pyramidFallbackSpans": s.PyramidFallbackSpans,
	}
}

// Reset zeroes every counter atomically.
func (s *Stats) Reset() {
	for _, f := range s.fields() {
		atomic.StoreInt64(f, 0)
	}
}

// Add accumulates o into s atomically. o is taken by value and read with
// plain loads: callers pass either a literal or a worker-local Stats no
// other goroutine is mutating.
func (s *Stats) Add(o Stats) {
	dst, src := s.fields(), o.fields()
	for i, f := range dst {
		atomic.AddInt64(f, *src[i])
	}
}

// Load returns a copy of the counters read with atomic loads, safe to call
// while workers are still adding. The copy is per-field consistent, not a
// cross-field snapshot.
func (s *Stats) Load() Stats {
	var out Stats
	dst, src := out.fields(), s.fields()
	for i, f := range src {
		*dst[i] = atomic.LoadInt64(f)
	}
	return out
}

func (s *Stats) String() string {
	v := s.Load()
	return fmt.Sprintf("loads=%d timeLoads=%d bytes=%d decoded=%d rounds=%d probes=%d pruned=%d",
		v.ChunksLoaded, v.TimeBlocksLoaded, v.BytesRead, v.PointsDecoded,
		v.CandidateRounds, v.IndexProbes, v.ChunksPruned)
}
