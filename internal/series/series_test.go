package series

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		s    Series
		ok   bool
	}{
		{"empty", nil, true},
		{"single", Series{{1, 1}}, true},
		{"increasing", Series{{1, 1}, {2, 2}, {5, 0}}, true},
		{"duplicate", Series{{1, 1}, {1, 2}}, false},
		{"decreasing", Series{{2, 1}, {1, 2}}, false},
		{"nan", Series{{1, math.NaN()}}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.s.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestIsSorted(t *testing.T) {
	if !(Series{{1, 0}, {2, 0}}).IsSorted() {
		t.Error("sorted series reported unsorted")
	}
	if (Series{{2, 0}, {1, 0}}).IsSorted() {
		t.Error("unsorted series reported sorted")
	}
	if (Series{{1, 0}, {1, 0}}).IsSorted() {
		t.Error("duplicate timestamps reported sorted")
	}
}

func TestSortDedupKeepsLastWrite(t *testing.T) {
	s := Series{{3, 30}, {1, 10}, {3, 31}, {2, 20}, {1, 11}}
	got := SortDedup(s)
	want := Series{{1, 11}, {2, 20}, {3, 31}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortDedup = %v, want %v", got, want)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("result not valid: %v", err)
	}
}

func TestSortDedupSmall(t *testing.T) {
	if got := SortDedup(nil); len(got) != 0 {
		t.Fatalf("SortDedup(nil) = %v", got)
	}
	one := Series{{5, 1}}
	if got := SortDedup(one); !reflect.DeepEqual(got, one) {
		t.Fatalf("SortDedup(one) = %v", got)
	}
}

func TestSortDedupProperty(t *testing.T) {
	f := func(raw []int16) bool {
		s := make(Series, len(raw))
		for i, r := range raw {
			s[i] = Point{T: int64(r % 64), V: float64(i)}
		}
		got := SortDedup(s.Clone())
		if err := got.Validate(); err != nil {
			return false
		}
		// Every timestamp in the input must appear exactly once with the
		// value of its last occurrence.
		last := map[int64]float64{}
		for _, p := range s {
			last[p.T] = p.V
		}
		if len(got) != len(last) {
			return false
		}
		for _, p := range got {
			if last[p.T] != p.V {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestColumnsRoundTrip(t *testing.T) {
	s := Series{{1, 1.5}, {4, -2}, {9, 0}}
	got := FromColumns(s.Times(), s.Values())
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip = %v, want %v", got, s)
	}
}

func TestFromColumnsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched column lengths")
		}
	}()
	FromColumns([]int64{1, 2}, []float64{1})
}

func TestTimeRange(t *testing.T) {
	r := TimeRange{10, 20}
	if !r.Contains(10) || r.Contains(20) || !r.Contains(19) || r.Contains(9) {
		t.Error("Contains is not half-open [10,20)")
	}
	if r.Empty() || !(TimeRange{5, 5}).Empty() || !(TimeRange{6, 5}).Empty() {
		t.Error("Empty misclassifies ranges")
	}
	if !r.Overlaps(TimeRange{19, 30}) || r.Overlaps(TimeRange{20, 30}) {
		t.Error("Overlaps wrong at right boundary")
	}
	if !r.Overlaps(TimeRange{0, 11}) || r.Overlaps(TimeRange{0, 10}) {
		t.Error("Overlaps wrong at left boundary")
	}
	got := r.Intersect(TimeRange{15, 40})
	if got != (TimeRange{15, 20}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := r.Intersect(TimeRange{30, 40}); !got.Empty() {
		t.Errorf("disjoint Intersect = %v, want empty", got)
	}
}

func TestSlice(t *testing.T) {
	s := Series{{10, 0}, {20, 1}, {30, 2}, {40, 3}}
	tests := []struct {
		r    TimeRange
		want Series
	}{
		{TimeRange{10, 41}, s},
		{TimeRange{10, 40}, s[:3]},
		{TimeRange{11, 40}, s[1:3]},
		{TimeRange{0, 5}, nil},
		{TimeRange{45, 50}, nil},
		{TimeRange{20, 20}, nil},
		{TimeRange{20, 21}, s[1:2]},
	}
	for _, tc := range tests {
		got := s.Slice(tc.r)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Slice(%v) = %v, want %v", tc.r, got, tc.want)
		}
	}
}

func TestSliceIsView(t *testing.T) {
	s := Series{{10, 0}, {20, 1}}
	v := s.Slice(TimeRange{10, 15})
	if len(v) != 1 {
		t.Fatalf("len = %d", len(v))
	}
	v[0].V = 99
	if s[0].V != 99 {
		t.Error("Slice copied data; want a view")
	}
}

func TestIndexOf(t *testing.T) {
	s := Series{{10, 0}, {20, 1}, {30, 2}}
	if i, ok := s.IndexOf(20); !ok || i != 1 {
		t.Errorf("IndexOf(20) = %d,%v", i, ok)
	}
	if i, ok := s.IndexOf(25); ok || i != 2 {
		t.Errorf("IndexOf(25) = %d,%v", i, ok)
	}
	if i, ok := s.IndexOf(5); ok || i != 0 {
		t.Errorf("IndexOf(5) = %d,%v", i, ok)
	}
	if i, ok := s.IndexOf(35); ok || i != 3 {
		t.Errorf("IndexOf(35) = %d,%v", i, ok)
	}
}

func TestBounds(t *testing.T) {
	if _, ok := (Series{}).Bounds(); ok {
		t.Error("empty series reported bounds")
	}
	r, ok := (Series{{10, 0}, {30, 1}}).Bounds()
	if !ok || r != (TimeRange{10, 31}) {
		t.Errorf("Bounds = %v,%v", r, ok)
	}
	if !r.Contains(30) {
		t.Error("Bounds must contain last timestamp")
	}
}

func TestFirstLast(t *testing.T) {
	s := Series{{10, 1}, {20, 2}}
	if s.First() != (Point{10, 1}) || s.Last() != (Point{20, 2}) {
		t.Errorf("First/Last = %v/%v", s.First(), s.Last())
	}
}

func TestSliceAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(50)
		s := make(Series, 0, n)
		t0 := int64(0)
		for i := 0; i < n; i++ {
			t0 += int64(1 + rng.Intn(5))
			s = append(s, Point{T: t0, V: rng.Float64()})
		}
		r := TimeRange{Start: int64(rng.Intn(60)), End: int64(rng.Intn(260))}
		got := s.Slice(r)
		var want Series
		for _, p := range s {
			if r.Contains(p.T) {
				want = append(want, p)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: Slice(%v) len=%d, want %d", trial, r, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: Slice(%v)[%d] = %v, want %v", trial, r, i, got[i], want[i])
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := Series{{1, 1}}
	c := s.Clone()
	c[0].V = 2
	if s[0].V != 1 {
		t.Error("Clone shares backing array")
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{5, 1.5}).String(); got != "(5, 1.5)" {
		t.Errorf("String = %q", got)
	}
}

func TestTimesValuesAreCopies(t *testing.T) {
	s := Series{{1, 2}}
	ts, vs := s.Times(), s.Values()
	ts[0], vs[0] = 9, 9
	if s[0].T != 1 || s[0].V != 2 {
		t.Error("Times/Values must not alias the series")
	}
}

func TestSliceSortedInputProperty(t *testing.T) {
	f := func(ts []uint8, lo, hi uint8) bool {
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		var s Series
		for i, v := range ts {
			if i > 0 && v == ts[i-1] {
				continue
			}
			s = append(s, Point{T: int64(v), V: float64(i)})
		}
		r := TimeRange{Start: int64(lo), End: int64(hi)}
		got := s.Slice(r)
		for _, p := range got {
			if !r.Contains(p.T) {
				return false
			}
		}
		// Completeness: every in-range point of s appears.
		cnt := 0
		for _, p := range s {
			if r.Contains(p.T) {
				cnt++
			}
		}
		return cnt == len(got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
